#include "hive/repartition_join.h"

#include "common/strings.h"
#include "mapreduce/input_format.h"
#include "obs/query_profile.h"

namespace clydesdale {
namespace hive {

namespace {
constexpr int32_t kFactTag = 0;
constexpr int32_t kDimTag = 1;

/// Row-counting operator node shared by both sides of the repartition join
/// (the tagging mapper and the joining reducer): wall/cpu live on the task
/// root, so these carry the row flow only.
obs::OperatorProfile CountingProfileNode(const char* name, const char* kind,
                                         uint64_t rows_in, uint64_t rows_out) {
  obs::OperatorProfile node;
  node.name = name;
  node.kind = kind;
  node.rows_in = rows_in;
  node.rows_out = rows_out;
  node.tasks = 1;
  return node;
}
}  // namespace

Status RepartitionJoinMapper::Setup(mr::TaskContext* context) {
  profiled_ = context->profile_enabled();
  CLY_ASSIGN_OR_RETURN(fact_pred_,
                       spec_.fact_predicate->Bind(*spec_.fact_schema));
  CLY_ASSIGN_OR_RETURN(dim_pred_, spec_.dim_predicate->Bind(*spec_.dim_schema));
  CLY_ASSIGN_OR_RETURN(fact_fk_index_,
                       spec_.fact_schema->Require(spec_.fact_fk));
  CLY_ASSIGN_OR_RETURN(dim_pk_index_, spec_.dim_schema->Require(spec_.dim_pk));
  for (const std::string& c : spec_.fact_out_cols) {
    CLY_ASSIGN_OR_RETURN(int i, spec_.fact_schema->Require(c));
    fact_out_idx_.push_back(i);
  }
  for (const std::string& c : spec_.aux_cols) {
    CLY_ASSIGN_OR_RETURN(int i, spec_.dim_schema->Require(c));
    dim_aux_idx_.push_back(i);
  }
  return Status::OK();
}

Status RepartitionJoinMapper::Map(const Row& key, const Row& value,
                                  mr::TaskContext*, mr::OutputCollector* out) {
  (void)key;
  if (profiled_) ++rows_in_;
  // MultiTableInputFormat prefixed the source-table ordinal as field 0
  // (0 = fact side, 1 = dimension side; see MakeRepartitionJoinJob).
  const int32_t tag = value.Get(0).i32();
  // Strip the tag: the remaining fields follow the side's projection order.
  Row row;
  row.Reserve(value.size() - 1);
  for (int i = 1; i < value.size(); ++i) row.Append(value.Get(i));

  if (tag == kFactTag) {
    if (!fact_pred_->Eval(row)) return Status::OK();
    Row out_key({row.Get(fact_fk_index_)});
    Row out_value;
    out_value.Reserve(1 + static_cast<int>(fact_out_idx_.size()));
    out_value.Append(Value(kFactTag));
    for (int i : fact_out_idx_) out_value.Append(row.Get(i));
    if (profiled_) ++rows_out_;
    return out->Collect(out_key, out_value);
  }
  // Dimension side: filter, key by pk, carry the aux columns.
  if (!dim_pred_->Eval(row)) return Status::OK();
  Row out_key({row.Get(dim_pk_index_)});
  Row out_value;
  out_value.Reserve(1 + static_cast<int>(dim_aux_idx_.size()));
  out_value.Append(Value(kDimTag));
  for (int i : dim_aux_idx_) out_value.Append(row.Get(i));
  if (profiled_) ++rows_out_;
  return out->Collect(out_key, out_value);
}

Status RepartitionJoinMapper::Cleanup(mr::TaskContext* context,
                                      mr::OutputCollector* out) {
  (void)out;
  if (profiled_) {
    context->AddProfileOperator(
        CountingProfileNode("tag-partition", "partition", rows_in_, rows_out_));
  }
  return Status::OK();
}

Status RepartitionJoinReducer::Setup(mr::TaskContext* context) {
  profiled_ = context->profile_enabled();
  return Status::OK();
}

Status RepartitionJoinReducer::Reduce(const Row& key,
                                      const std::vector<Row>& values,
                                      mr::TaskContext*,
                                      mr::OutputCollector* out) {
  (void)key;
  if (profiled_) rows_in_ += values.size();
  // Find the dimension row (0 or 1 of them: pk side).
  const Row* dim_row = nullptr;
  for (const Row& v : values) {
    if (v.Get(0).i32() == kDimTag) {
      if (dim_row != nullptr) {
        return Status::Internal("duplicate dimension primary key in join");
      }
      dim_row = &v;
    }
  }
  if (dim_row == nullptr) return Status::OK();  // inner join: no match

  Row empty_key;
  for (const Row& v : values) {
    if (v.Get(0).i32() != kFactTag) continue;
    Row joined;
    joined.Reserve(v.size() - 1 + dim_row->size() - 1);
    for (int i = 1; i < v.size(); ++i) joined.Append(v.Get(i));
    for (int i = 1; i < dim_row->size(); ++i) joined.Append(dim_row->Get(i));
    if (profiled_) ++rows_out_;
    CLY_RETURN_IF_ERROR(out->Collect(empty_key, joined));
  }
  return Status::OK();
}

Status RepartitionJoinReducer::Cleanup(mr::TaskContext* context,
                                       mr::OutputCollector* out) {
  (void)out;
  if (profiled_) {
    context->AddProfileOperator(
        CountingProfileNode("join", "join", rows_in_, rows_out_));
  }
  return Status::OK();
}

Result<mr::JobConf> MakeRepartitionJoinJob(const JoinStageSpec& spec,
                                           int reduce_tasks) {
  mr::JobConf conf;
  conf.job_name = StrCat("hive-repartition-join", spec.stage_index + 1);
  conf.num_reduce_tasks = reduce_tasks;

  conf.SetList(mr::kConfInputTables, {spec.fact_table, spec.dim_table});
  conf.SetList(StrCat(mr::kConfInputProjection, ".0"), spec.fact_cols);
  conf.SetList(StrCat(mr::kConfInputProjection, ".1"), spec.dim_cols);
  conf.input_format_factory = [] {
    return std::make_unique<mr::MultiTableInputFormat>();
  };

  const JoinStageSpec captured = spec;
  conf.mapper_factory = [captured] {
    return std::make_unique<RepartitionJoinMapper>(captured);
  };
  conf.reducer_factory = [captured] {
    return std::make_unique<RepartitionJoinReducer>(captured);
  };

  conf.Set(mr::kConfOutputTable, spec.output_table);
  conf.Set(mr::kConfOutputColumns, spec.output_columns_decl);
  // Hive serializes intermediate tables as delimited text (its default
  // serde) — one of the overheads the paper charges to the baseline.
  conf.Set(mr::kConfOutputFormat, storage::kFormatText);
  conf.output_format_factory = [] {
    return std::make_unique<mr::TableOutputFormat>();
  };
  return conf;
}

}  // namespace hive
}  // namespace clydesdale
