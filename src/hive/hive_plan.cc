#include "hive/hive_plan.h"

#include <algorithm>

#include "common/strings.h"
#include "core/aggregation.h"

namespace clydesdale {
namespace hive {

const char* JoinStrategyName(JoinStrategy strategy) {
  return strategy == JoinStrategy::kRepartition ? "repartition" : "mapjoin";
}

namespace {

void AddUnique(std::vector<std::string>* list, const std::string& name) {
  if (std::find(list->begin(), list->end(), name) == list->end()) {
    list->push_back(name);
  }
}

Result<SchemaPtr> ProjectByName(const SchemaPtr& schema,
                                const std::vector<std::string>& names) {
  std::vector<int> idx;
  idx.reserve(names.size());
  for (const std::string& n : names) {
    CLY_ASSIGN_OR_RETURN(int i, schema->Require(n));
    idx.push_back(i);
  }
  return schema->Project(idx);
}

std::string DeclOf(const Schema& schema) {
  std::vector<std::string> parts;
  for (const Field& f : schema.fields()) {
    parts.push_back(StrCat(f.name, ":", TypeKindToString(f.type)));
  }
  return StrJoin(parts, ",");
}

}  // namespace

Result<HivePlan> CompileHivePlan(const core::StarSchema& star,
                                 const core::StarQuerySpec& spec,
                                 const std::string& scratch_root) {
  HivePlan plan;
  const SchemaPtr fact_schema = star.fact().schema;

  // Fact columns that must survive the whole join chain: aggregate inputs
  // and group-by columns that come from the fact table. Predicate-only
  // columns are read in stage 1 and dropped right after the filter.
  std::vector<std::string> keep;
  {
    std::vector<std::string> agg_cols;
    for (const core::AggSpec& agg : spec.aggregates) {
      if (agg.expr != nullptr) agg.expr->CollectColumns(&agg_cols);
    }
    for (const std::string& c : agg_cols) AddUnique(&keep, c);
    for (const std::string& g : spec.group_by) {
      if (fact_schema->IndexOf(g) >= 0) AddUnique(&keep, g);
    }
  }

  // Working-set bookkeeping across stages.
  std::string current_table = star.fact().path;
  SchemaPtr current_schema;  // set per stage from the projections
  std::vector<std::string> current_cols;  // columns in the working table

  for (size_t d = 0; d < spec.dims.size(); ++d) {
    const core::DimJoinSpec& join = spec.dims[d];
    CLY_ASSIGN_OR_RETURN(const core::DimTableInfo* dim,
                         star.dim(join.dimension));

    JoinStageSpec stage;
    stage.stage_index = static_cast<int>(d);
    stage.fact_table = current_table;
    stage.fact_fk = join.fact_fk;

    if (d == 0) {
      // Stage 1 reads the base fact table: remaining FKs + kept columns +
      // predicate columns.
      stage.fact_predicate = spec.fact_predicate;
      std::vector<std::string> cols;
      for (const core::DimJoinSpec& dj : spec.dims) {
        AddUnique(&cols, dj.fact_fk);
      }
      std::vector<std::string> pred_cols;
      spec.fact_predicate->CollectColumns(&pred_cols);
      for (const std::string& c : pred_cols) AddUnique(&cols, c);
      for (const std::string& c : keep) AddUnique(&cols, c);
      stage.fact_cols = cols;
      CLY_ASSIGN_OR_RETURN(stage.fact_schema,
                           ProjectByName(fact_schema, cols));
    } else {
      stage.fact_cols = current_cols;
      stage.fact_schema = current_schema;
    }

    // Output fact columns: everything except this stage's fk and (after
    // stage 1) predicate-only columns.
    for (const std::string& c : stage.fact_cols) {
      if (c == stage.fact_fk) continue;
      const bool is_later_fk = [&] {
        for (size_t e = d + 1; e < spec.dims.size(); ++e) {
          if (spec.dims[e].fact_fk == c) return true;
        }
        return false;
      }();
      const bool is_kept =
          std::find(keep.begin(), keep.end(), c) != keep.end();
      const bool is_carried_aux =
          stage.fact_schema->IndexOf(c) >= 0 &&
          fact_schema->IndexOf(c) < 0;  // aux col from an earlier join
      if (is_later_fk || is_kept || is_carried_aux) {
        stage.fact_out_cols.push_back(c);
      }
    }

    // Dimension side projection: pk + predicate columns + aux.
    stage.dim_table = dim->desc.path;
    stage.dim_predicate = join.predicate;
    stage.dim_pk = join.dim_pk;
    stage.aux_cols = join.aux_columns;
    {
      std::vector<std::string> cols;
      AddUnique(&cols, join.dim_pk);
      std::vector<std::string> pred_cols;
      join.predicate->CollectColumns(&pred_cols);
      for (const std::string& c : pred_cols) AddUnique(&cols, c);
      for (const std::string& c : join.aux_columns) AddUnique(&cols, c);
      stage.dim_cols = cols;
      CLY_ASSIGN_OR_RETURN(stage.dim_schema,
                           ProjectByName(dim->desc.schema, cols));
    }

    // Output schema: fact_out_cols (types from the fact-side schema) then
    // aux (types from the dimension).
    {
      std::vector<Field> fields;
      for (const std::string& c : stage.fact_out_cols) {
        CLY_ASSIGN_OR_RETURN(int i, stage.fact_schema->Require(c));
        fields.push_back(stage.fact_schema->field(i));
      }
      for (const std::string& c : stage.aux_cols) {
        CLY_ASSIGN_OR_RETURN(int i, stage.dim_schema->Require(c));
        fields.push_back(stage.dim_schema->field(i));
      }
      stage.output_schema = Schema::Make(std::move(fields));
      stage.output_columns_decl = DeclOf(*stage.output_schema);
    }
    stage.output_table =
        StrCat(scratch_root, "/", spec.id, "/join", d + 1);

    current_table = stage.output_table;
    current_schema = stage.output_schema;
    current_cols.clear();
    for (const Field& f : current_schema->fields()) {
      current_cols.push_back(f.name);
    }
    plan.joins.push_back(std::move(stage));
  }

  // Group-by stage over the final joined table.
  AggStageSpec agg;
  agg.input_table = current_table;
  agg.input_schema = current_schema;
  agg.group_by = spec.group_by;
  agg.aggregates = spec.aggregates;
  agg.output_table = StrCat(scratch_root, "/", spec.id, "/grouped");
  {
    std::vector<Field> fields;
    for (const std::string& g : spec.group_by) {
      CLY_ASSIGN_OR_RETURN(int i, current_schema->Require(g));
      fields.push_back(current_schema->field(i));
    }
    // The grouped table stores raw accumulators; AVG finalizes client-side.
    for (const std::string& acc :
         core::AggLayout::For(spec.aggregates).AccumulatorNames()) {
      fields.push_back(Field{acc, TypeKind::kInt64, 8});
    }
    agg.output_schema = Schema::Make(std::move(fields));
    agg.output_columns_decl = DeclOf(*agg.output_schema);
  }
  plan.agg = std::move(agg);
  return plan;
}

}  // namespace hive
}  // namespace clydesdale
