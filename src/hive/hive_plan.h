#ifndef CLYDESDALE_HIVE_HIVE_PLAN_H_
#define CLYDESDALE_HIVE_HIVE_PLAN_H_

#include <string>
#include <vector>

#include "core/star_query.h"
#include "core/star_schema.h"

namespace clydesdale {
namespace hive {

/// How joins execute (paper §6.1): re-partition (common/sort-merge) join or
/// mapjoin (broadcast hash join via the distributed cache).
enum class JoinStrategy { kRepartition, kMapJoin };

const char* JoinStrategyName(JoinStrategy strategy);

/// One fact-with-one-dimension join stage of the Hive plan. Hive joins the
/// dimensions one at a time, each stage a full MapReduce job whose output is
/// round-tripped through HDFS (paper §6.3).
struct JoinStageSpec {
  int stage_index = 0;
  // Fact side (the current working table: the base fact table for stage 1,
  // the previous stage's output afterwards).
  std::string fact_table;
  /// Projection read from the fact-side table, in row order.
  std::vector<std::string> fact_cols;
  SchemaPtr fact_schema;  // schema of the projected fact-side rows
  /// Residual fact filter (stage 1 only; True afterwards).
  Predicate::Ptr fact_predicate = Predicate::True();
  std::string fact_fk;
  /// Fact columns carried into the output (fk dropped).
  std::vector<std::string> fact_out_cols;

  // Dimension side.
  std::string dim_table;
  std::vector<std::string> dim_cols;  // projection: pk + predicate cols + aux
  SchemaPtr dim_schema;               // schema of the projected dim rows
  Predicate::Ptr dim_predicate = Predicate::True();
  std::string dim_pk;
  std::vector<std::string> aux_cols;

  // Output.
  std::string output_table;
  /// "name:type,..." declaration: fact_out_cols then aux_cols.
  std::string output_columns_decl;
  SchemaPtr output_schema;
};

/// The terminal aggregation + ordering stages.
struct AggStageSpec {
  std::string input_table;
  SchemaPtr input_schema;
  std::vector<std::string> group_by;    // columns of input_schema
  std::vector<core::AggSpec> aggregates;  // exprs over input_schema
  std::string output_table;             // grouped result table
  std::string output_columns_decl;
  SchemaPtr output_schema;
};

/// A compiled Hive plan: N join stages, a group-by stage, an order-by stage.
struct HivePlan {
  std::vector<JoinStageSpec> joins;
  AggStageSpec agg;
};

/// Compiles a star query into Hive's stage chain against `star` (whose fact
/// desc must point at the Hive copy of the fact table, e.g. RCFile).
/// Intermediate tables are placed under `scratch_root`.
Result<HivePlan> CompileHivePlan(const core::StarSchema& star,
                                 const core::StarQuerySpec& spec,
                                 const std::string& scratch_root);

}  // namespace hive
}  // namespace clydesdale

#endif  // CLYDESDALE_HIVE_HIVE_PLAN_H_
