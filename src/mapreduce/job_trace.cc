#include "mapreduce/job_trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "obs/chrome_trace.h"

namespace clydesdale {
namespace mr {

namespace {

/// Slowest task + skew (max / mean wall time) over one phase's tasks.
struct PhaseSkew {
  int slowest = -1;
  hdfs::NodeId slowest_node = hdfs::kNoNode;
  double slowest_seconds = 0;
  double skew = 0;
};

PhaseSkew ComputeSkew(const std::vector<TaskReport>& tasks) {
  PhaseSkew out;
  if (tasks.empty()) return out;
  double total = 0;
  for (const TaskReport& t : tasks) {
    total += t.wall_seconds;
    if (t.wall_seconds > out.slowest_seconds) {
      out.slowest_seconds = t.wall_seconds;
      out.slowest = t.index;
      out.slowest_node = t.node;
    }
  }
  const double mean = total / static_cast<double>(tasks.size());
  out.skew = mean > 0 ? out.slowest_seconds / mean : 0;
  return out;
}

/// Duration (seconds) of the first phase-category span named `name`, or
/// `fallback` when the report carries no spans (tracing was off).
double PhaseSeconds(const JobReport& report, const char* name,
                    double fallback) {
  for (const obs::SpanRecord& span : report.spans) {
    if (span.name == name) {
      return static_cast<double>(span.dur_us) * 1e-6;
    }
  }
  return fallback;
}

}  // namespace

CriticalPathReport CriticalPath(const JobReport& report) {
  CriticalPathReport out;
  out.wall_seconds = report.wall_seconds;

  const PhaseSkew map_skew = ComputeSkew(report.map_tasks);
  out.slowest_map = map_skew.slowest;
  out.slowest_map_node = map_skew.slowest_node;
  out.slowest_map_seconds = map_skew.slowest_seconds;
  out.map_skew = map_skew.skew;

  const PhaseSkew reduce_skew = ComputeSkew(report.reduce_tasks);
  out.slowest_reduce = reduce_skew.slowest;
  out.slowest_reduce_node = reduce_skew.slowest_node;
  out.slowest_reduce_seconds = reduce_skew.slowest_seconds;
  out.reduce_skew = reduce_skew.skew;

  out.setup_seconds = PhaseSeconds(report, "setup", 0);
  out.map_phase_seconds =
      PhaseSeconds(report, "map-phase", map_skew.slowest_seconds);
  out.reduce_phase_seconds =
      PhaseSeconds(report, "reduce-phase", reduce_skew.slowest_seconds);
  out.commit_seconds = PhaseSeconds(report, "commit", 0);
  out.shuffle_overlap_seconds = PhaseSeconds(report, "shuffle-overlap", 0);
  return out;
}

std::string CriticalPathReport::ToString() const {
  std::string out = StrCat("critical path (", FormatDouble(wall_seconds, 3),
                           "s wall): setup ", FormatDouble(setup_seconds, 3),
                           "s -> ");
  if (slowest_map >= 0) {
    out += StrCat("m-", slowest_map, "@node", slowest_map_node, " (",
                  FormatDouble(slowest_map_seconds, 3), "s, skew ",
                  FormatDouble(map_skew, 2), ")");
  } else {
    out += "no maps";
  }
  if (slowest_reduce >= 0) {
    // "shuffle overlap" replaces "shuffle barrier" when reducers were
    // already fetching during the map phase (pipelined shuffle).
    out += shuffle_overlap_seconds > 0
               ? StrCat(" -> shuffle overlap ",
                        FormatDouble(shuffle_overlap_seconds, 3), "s -> r-",
                        slowest_reduce, "@node", slowest_reduce_node, " (",
                        FormatDouble(slowest_reduce_seconds, 3), "s, skew ",
                        FormatDouble(reduce_skew, 2), ")")
               : StrCat(" -> shuffle barrier -> r-", slowest_reduce, "@node",
                        slowest_reduce_node, " (",
                        FormatDouble(slowest_reduce_seconds, 3), "s, skew ",
                        FormatDouble(reduce_skew, 2), ")");
  } else {
    out += " -> map-only";
  }
  out += StrCat(" -> commit ", FormatDouble(commit_seconds, 3), "s");
  return out;
}

std::string TimelineText(const JobReport& report) {
  std::ostringstream out;
  out << report.job_name << " timeline ("
      << FormatDouble(report.wall_seconds, 3) << "s wall, "
      << report.map_tasks.size() << " map / " << report.reduce_tasks.size()
      << " reduce)\n";

  if (!report.spans.empty()) {
    // Proportional bars over the job's span window. Only job/phase/task
    // spans get a line; stage spans would drown the output (they are in
    // the Chrome trace for drill-down).
    constexpr int kBarWidth = 40;
    int64_t span_end = 1;
    for (const obs::SpanRecord& s : report.spans) {
      span_end = std::max(span_end, s.end_us());
    }
    for (const obs::SpanRecord& s : report.spans) {
      if (std::string_view(s.category) == "stage") continue;
      const int lead = static_cast<int>(s.start_us * kBarWidth / span_end);
      const int len = std::max<int>(
          1, static_cast<int>(s.dur_us * kBarWidth / span_end));
      out << "  [" << std::string(static_cast<size_t>(lead), ' ')
          << std::string(static_cast<size_t>(std::min(len, kBarWidth - lead)),
                         '#')
          << std::string(
                 static_cast<size_t>(std::max(0, kBarWidth - lead - len)), ' ')
          << "] " << std::string(static_cast<size_t>(2 * s.depth), ' ')
          << s.name;
      if (s.task >= 0) out << " #" << s.task;
      if (s.node >= 0) out << " @node" << s.node;
      out << " " << FormatDouble(static_cast<double>(s.dur_us) * 1e-6, 3)
          << "s\n";
    }
  }

  const auto histograms = report.histograms.Snapshot();
  if (!histograms.empty()) {
    out << "  histograms:\n";
    for (const auto& [name, histogram] : histograms) {
      out << "    " << name << ": " << histogram.ToString() << "\n";
    }
  }
  out << "  " << CriticalPath(report).ToString() << "\n";
  return out.str();
}

Status WriteJobTrace(const JobReport& report, const std::string& dir,
                     int64_t instance) {
  const std::string base =
      StrCat(dir, "/", report.job_name, "-", instance);
  CLY_RETURN_IF_ERROR(obs::WriteChromeTrace(report.spans, report.job_name,
                                            StrCat(base, ".trace.json")));
  const std::string timeline_path = StrCat(base, ".timeline.txt");
  std::ofstream file(timeline_path, std::ios::trunc);
  if (!file) {
    return Status::IoError("cannot open timeline file: " + timeline_path);
  }
  file << TimelineText(report);
  return Status::OK();
}

}  // namespace mr
}  // namespace clydesdale
