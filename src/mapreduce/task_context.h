#ifndef CLYDESDALE_MAPREDUCE_TASK_CONTEXT_H_
#define CLYDESDALE_MAPREDUCE_TASK_CONTEXT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hdfs/block.h"
#include "hdfs/local_store.h"
#include "mapreduce/counters.h"
#include "mapreduce/job_conf.h"
#include "obs/histogram.h"
#include "obs/mem_tracker.h"
#include "obs/query_profile.h"
#include "obs/trace.h"

namespace clydesdale {
namespace mr {

class MrCluster;

/// Per-(node, job) state shared by consecutive tasks when JVM reuse is on —
/// the C++ analogue of Hadoop's static-objects-in-a-reused-JVM idiom that
/// Clydesdale uses to build dimension hash tables once per node (paper §5.2).
class SharedJvmState {
 public:
  /// Returns the value under `key`, constructing it with `factory` on first
  /// use. Construction is serialized; the factory runs at most once per key.
  template <typename T>
  std::shared_ptr<T> GetOrCreate(const std::string& key,
                                 const std::function<std::shared_ptr<T>()>& factory) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::shared_ptr<T> created = factory();
      it = values_.emplace(key, created).first;
      ++creations_;
    }
    return std::static_pointer_cast<T>(it->second);
  }

  /// How many distinct keys were constructed (== hash-table builds per node
  /// for Clydesdale jobs; tests assert on this).
  int64_t creations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return creations_;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<void>> values_;
  int64_t creations_ = 0;
};

/// Everything a running task can touch: configuration, the cluster services
/// (DFS, node-local disk, distributed cache), counters and I/O attribution.
class TaskContext {
 public:
  TaskContext(const JobConf* conf, MrCluster* cluster, int task_index,
              hdfs::NodeId node, int allowed_threads,
              std::shared_ptr<SharedJvmState> shared, Counters* counters,
              obs::TraceRecorder* trace = nullptr,
              obs::HistogramRegistry* histograms = nullptr, int attempt = 0);

  const JobConf& conf() const { return *conf_; }
  MrCluster* cluster() { return cluster_; }
  int task_index() const { return task_index_; }
  /// Attempt number of this execution (0 unless the task was retried).
  int attempt() const { return attempt_; }
  hdfs::NodeId node() const { return node_; }
  /// Number of processor slots the scheduler granted this task (paper §5.2,
  /// requirement 3). Multi-threaded runners size their thread pool with it.
  int allowed_threads() const { return allowed_threads_; }

  /// Shared per-(node, job) state; null when JVM reuse is off.
  SharedJvmState* shared_state() { return shared_.get(); }

  /// This node's local disk.
  hdfs::LocalStore* local_store();

  /// Local path of a distributed-cache file for the given DFS path, or
  /// NotFound if the job did not register it.
  Result<std::string> CacheFilePath(const std::string& dfs_path) const;

  Counters* counters() { return counters_; }

  /// The job's span sink, or null when tracing is off — pass directly to
  /// obs::Span, which treats null as "record nothing".
  obs::TraceRecorder* trace() { return trace_; }

  /// The job's distribution metrics, or null outside a real engine run.
  /// Hot loops should record into a task-local obs::Histogram and merge
  /// once at task end rather than hitting the registry per record.
  obs::HistogramRegistry* histograms() { return histograms_; }

  /// True when the job runs with kConfProfileEnabled: runners should build
  /// OperatorProfile nodes and hand them over via AddProfileOperator. When
  /// false, instrumentation must be skipped entirely (zero overhead off).
  bool profile_enabled() const { return profile_enabled_; }

  /// Hands an operator subtree produced by this attempt's runner to the
  /// engine, which assembles the attempt root and merges it into the job's
  /// QueryProfile. Thread-safe (multi-threaded map runners call this from
  /// worker threads). No-op recording when profiling is off would be a bug
  /// in the caller — gate on profile_enabled() first.
  void AddProfileOperator(obs::OperatorProfile op);

  /// Drains the operators recorded so far (engine-side, after the runner
  /// returned).
  std::vector<obs::OperatorProfile> TakeProfileOperators();

  /// "job/m-3@node1" (or r- for reduces): the task's log identity, used
  /// for ScopedLogContext and trace span labels.
  std::string DebugLabel(bool is_map) const;

  /// HDFS I/O attribution. Single-threaded task code may pass this to
  /// readers directly; multi-threaded runners must give each thread its own
  /// IoStats and fold them in through MergeIoStats.
  hdfs::IoStats* io_stats() { return &io_stats_; }
  const hdfs::IoStats& io_stats() const { return io_stats_; }
  void MergeIoStats(const hdfs::IoStats& stats);

  /// Installs this attempt's memory trackers (engine-side, before the task
  /// runs): `attempt` is the attempt-scoped tracker (freed when the attempt
  /// ends), `job` the per-(job, node) tracker that outlives attempts —
  /// allocations that survive the attempt (shared dim hash tables) charge
  /// the job tracker instead. Both null when obs.mem.enabled is off.
  void set_mem_trackers(std::shared_ptr<obs::MemTracker> attempt,
                        std::shared_ptr<obs::MemTracker> job) {
    mem_tracker_ = std::move(attempt);
    job_mem_tracker_ = std::move(job);
  }
  /// Attempt-scoped tracker (null = tracking off).
  const std::shared_ptr<obs::MemTracker>& mem_tracker() const {
    return mem_tracker_;
  }
  /// Per-(job, node) tracker for attempt-outliving allocations (null = off).
  const std::shared_ptr<obs::MemTracker>& job_mem_tracker() const {
    return job_mem_tracker_;
  }

  /// Node-local disk bytes this task read (dimension replicas, dist cache).
  void AddLocalDiskBytes(uint64_t n) {
    local_disk_bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t local_disk_bytes() const {
    return local_disk_bytes_.load(std::memory_order_relaxed);
  }

 private:
  const JobConf* conf_;
  MrCluster* cluster_;
  int task_index_;
  hdfs::NodeId node_;
  int allowed_threads_;
  std::shared_ptr<SharedJvmState> shared_;
  Counters* counters_;
  obs::TraceRecorder* trace_;
  obs::HistogramRegistry* histograms_;
  int attempt_;
  hdfs::IoStats io_stats_;
  std::mutex io_mu_;
  std::atomic<uint64_t> local_disk_bytes_{0};
  bool profile_enabled_ = false;
  std::mutex profile_mu_;
  std::vector<obs::OperatorProfile> profile_ops_;
  std::shared_ptr<obs::MemTracker> mem_tracker_;
  std::shared_ptr<obs::MemTracker> job_mem_tracker_;
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_TASK_CONTEXT_H_
