#include "mapreduce/cluster_metrics.h"

#include "common/strings.h"

namespace clydesdale {
namespace mr {

std::vector<std::string> StandardMetricFamilyNames() {
  return {
      kMetricRunningMaps,          kMetricRunningReduces,
      kMetricQueuedMaps,           kMetricQueuedReduces,
      kMetricAttemptsFinished,     kMetricAttemptDuration,
      kMetricShuffleRunsPublished, kMetricShuffleRunsFetched,
      kMetricShuffleBytesInflight, kMetricStragglersRunning,
      kMetricStragglersTotal,      kMetricJobsRunning,
      kMetricMemNodeBytes,         kMetricMemNodePeakBytes,
      kMetricMemJobBytes,          kMetricMemJobPeakBytes,
      kMetricCacheBytes,           kMetricCacheEntries,
  };
}

ClusterMetrics::ClusterMetrics(obs::MetricsRegistry* registry, int num_nodes)
    : registry_(registry) {
  obs::MetricFamily* running_maps = registry->GaugeFamily(
      kMetricRunningMaps, "Map task attempts running on each node", {"node"});
  obs::MetricFamily* running_reduces = registry->GaugeFamily(
      kMetricRunningReduces, "Reduce task attempts running on each node",
      {"node"});
  obs::MetricFamily* mem_node = registry->GaugeFamily(
      kMetricMemNodeBytes, "Tracked memory bytes resident on each node",
      {"node"});
  obs::MetricFamily* mem_node_peak = registry->GaugeFamily(
      kMetricMemNodePeakBytes,
      "High-water tracked memory bytes on each node", {"node"});
  obs::MetricFamily* mem_job = registry->GaugeFamily(
      kMetricMemJobBytes,
      "Tracked memory bytes of running jobs on each node", {"node"});
  obs::MetricFamily* mem_job_peak = registry->GaugeFamily(
      kMetricMemJobPeakBytes,
      "High-water tracked memory bytes of jobs on each node", {"node"});
  running_maps_.reserve(num_nodes);
  running_reduces_.reserve(num_nodes);
  for (int node = 0; node < num_nodes; ++node) {
    const std::string label = StrCat(node);
    running_maps_.push_back(running_maps->GaugeAt({label}));
    running_reduces_.push_back(running_reduces->GaugeAt({label}));
    mem_node_bytes_.push_back(mem_node->GaugeAt({label}));
    mem_node_peak_bytes_.push_back(mem_node_peak->GaugeAt({label}));
    mem_job_bytes_.push_back(mem_job->GaugeAt({label}));
    mem_job_peak_bytes_.push_back(mem_job_peak->GaugeAt({label}));
  }
  queued_maps_ =
      registry
          ->GaugeFamily(kMetricQueuedMaps,
                        "Map attempts queued and not yet claimed by a tracker")
          ->GaugeAt();
  queued_reduces_ =
      registry
          ->GaugeFamily(
              kMetricQueuedReduces,
              "Reduce attempts queued and not yet claimed by a tracker")
          ->GaugeAt();
  attempts_finished_ = registry->CounterFamily(
      kMetricAttemptsFinished, "Task attempts finished by kind and outcome",
      {"kind", "outcome"});
  obs::MetricFamily* duration = registry->HistogramFamily(
      kMetricAttemptDuration, "Task attempt wall time in microseconds",
      {"kind"});
  map_duration_ = duration->HistogramAt({"map"});
  reduce_duration_ = duration->HistogramAt({"reduce"});
  shuffle_runs_published_ =
      registry
          ->CounterFamily(kMetricShuffleRunsPublished,
                          "Sorted shuffle runs published by map attempts")
          ->CounterAt();
  shuffle_runs_fetched_ =
      registry
          ->CounterFamily(kMetricShuffleRunsFetched,
                          "Shuffle runs fetched by reduce attempts")
          ->CounterAt();
  shuffle_bytes_inflight_ =
      registry
          ->GaugeFamily(kMetricShuffleBytesInflight,
                        "Shuffle bytes published but not yet fetched")
          ->GaugeAt();
  stragglers_running_ =
      registry
          ->GaugeFamily(kMetricStragglersRunning,
                        "Running attempts currently flagged as stragglers")
          ->GaugeAt();
  stragglers_total_ =
      registry
          ->CounterFamily(kMetricStragglersTotal,
                          "Attempts ever flagged as stragglers")
          ->CounterAt();
  jobs_running_ =
      registry->GaugeFamily(kMetricJobsRunning, "Jobs currently executing")
          ->GaugeAt();
  cache_bytes_ =
      registry
          ->GaugeFamily(kMetricCacheBytes,
                        "Resident bytes in the cross-query dim-table cache")
          ->GaugeAt();
  cache_entries_ =
      registry
          ->GaugeFamily(kMetricCacheEntries,
                        "Resident entries in the cross-query dim-table cache")
          ->GaugeAt();
}

obs::Counter* ClusterMetrics::attempts_finished(bool is_map,
                                                const std::string& outcome) {
  return attempts_finished_->CounterAt({is_map ? "map" : "reduce", outcome});
}

}  // namespace mr
}  // namespace clydesdale
