#ifndef CLYDESDALE_MAPREDUCE_ENGINE_H_
#define CLYDESDALE_MAPREDUCE_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hdfs/dfs.h"
#include "hdfs/local_store.h"
#include "mapreduce/cluster_metrics.h"
#include "mapreduce/job_conf.h"
#include "mapreduce/job_report.h"
#include "mapreduce/output_format.h"
#include "mapreduce/task_context.h"
#include "mapreduce/task_tracker.h"
#include "obs/mem_tracker.h"
#include "obs/metrics.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace mr {

/// Cluster-wide knobs: the simulated topology plus Hadoop slot configuration
/// (paper §6.2: six map slots and one reduce slot per node).
struct ClusterOptions {
  int num_nodes = 4;
  int map_slots_per_node = 2;
  int reduce_slots_per_node = 1;
  uint64_t dfs_block_size = 4ULL * 1024 * 1024;
  int dfs_replication = 3;
};

/// A simulated Hadoop cluster: the DFS, per-node local disks, the persistent
/// per-node TaskTracker pools, and the JVM-reuse state registry. Owns nothing
/// about any particular job; jobs run against it via RunJob, which hands a
/// JobRunner to the trackers.
class MrCluster {
 public:
  explicit MrCluster(ClusterOptions options);
  ~MrCluster();  ///< Drains every tracker pool before destroying any tracker.

  const ClusterOptions& options() const { return options_; }
  int num_nodes() const { return options_.num_nodes; }

  hdfs::MiniDfs* dfs() { return &dfs_; }
  const hdfs::MiniDfs& dfs() const { return dfs_; }
  hdfs::LocalStore* local_store(hdfs::NodeId node) {
    return local_stores_[static_cast<size_t>(node)].get();
  }
  /// The node's persistent executor pool.
  TaskTracker* tracker(hdfs::NodeId node) {
    return trackers_[static_cast<size_t>(node)].get();
  }
  /// Pokes every tracker to re-evaluate runnable work (slot freed, phase
  /// transition, abort). Callers must not hold a JobRunner lock.
  void WakeAllTrackers();

  /// Cluster-lifetime metrics: the registry (for exposition / the poller)
  /// and the pre-resolved handle bundle (for the executor hot path). Always
  /// present; jobs only *update* them when kConfMetricsEnabled is set.
  obs::MetricsRegistry* metrics_registry() { return &metrics_registry_; }
  ClusterMetrics* metrics() { return metrics_.get(); }

  /// Root of the cluster's MemTracker tree ("cluster"); always present.
  const std::shared_ptr<obs::MemTracker>& mem_tracker() {
    return mem_tracker_;
  }
  /// Per-node tracker ("node<N>"), child of the cluster root. Jobs parent
  /// their per-(job, node) trackers here when kConfMemTrackingEnabled is on.
  const std::shared_ptr<obs::MemTracker>& node_mem_tracker(hdfs::NodeId node) {
    return node_mem_trackers_[static_cast<size_t>(node)];
  }

  /// Loads (and caches) a table's metadata.
  Result<storage::TableDesc> GetTable(const std::string& path);
  /// Drops a cached TableDesc (after rewriting a table) and bumps the
  /// path's catalog version, so serving-layer caches keyed on
  /// (path, version) can never serve entries built from the old data.
  void InvalidateTable(const std::string& path);
  /// Monotone catalog version of a table path; starts at 1 for paths never
  /// invalidated. Every (re)load path funnels through InvalidateTable, which
  /// bumps this.
  int64_t table_version(const std::string& path);

  /// Serving-layer hook: lets a resident query server expose its dim-table
  /// cache footprint to the per-job MetricsPoller without this layer
  /// depending on the serving layer. The probe returns (resident bytes,
  /// resident entries); sampled into the cly_cache_* gauges each poll tick.
  /// Pass nullptr to clear.
  using CacheStatsProbe = std::function<std::pair<int64_t, int64_t>()>;
  void SetCacheStatsProbe(CacheStatsProbe probe);
  CacheStatsProbe cache_stats_probe();

  /// JVM-reuse registry: per-(job instance, node) shared state. The engine
  /// hands these to tasks when the job enables jvm_reuse.
  std::shared_ptr<SharedJvmState> SharedStateFor(int64_t job_instance,
                                                 hdfs::NodeId node);

  /// Drops the job's JVM-reuse registry entries (commit-time GC; the shared
  /// state dies with the last task still holding its shared_ptr).
  void ReleaseJobState(int64_t job_instance);

  /// Allocates a unique job instance id.
  int64_t NextJobInstance();

 private:
  ClusterOptions options_;
  hdfs::MiniDfs dfs_;
  std::vector<std::unique_ptr<hdfs::LocalStore>> local_stores_;

  /// Declared before trackers_: tracker workers update metric cells through
  /// their JobRunner until their pools drain.
  obs::MetricsRegistry metrics_registry_;
  std::unique_ptr<ClusterMetrics> metrics_;
  /// MemTracker tree root and per-node children. shared_ptr-owned so a
  /// consumer outliving the cluster (late scratch GC) keeps its chain alive.
  std::shared_ptr<obs::MemTracker> mem_tracker_;
  std::vector<std::shared_ptr<obs::MemTracker>> node_mem_trackers_;

  std::mutex mu_;
  std::unordered_map<std::string, storage::TableDesc> table_cache_;
  std::unordered_map<std::string, int64_t> table_versions_;
  CacheStatsProbe cache_stats_probe_;
  std::map<std::pair<int64_t, hdfs::NodeId>, std::shared_ptr<SharedJvmState>>
      shared_states_;
  int64_t next_job_instance_ = 1;

  /// Declared last: tracker workers may touch the members above until their
  /// pools drain, so they must be destroyed first.
  std::vector<std::unique_ptr<TaskTracker>> trackers_;
};

/// The outcome of RunJob: execution report plus, for memory-output jobs, the
/// collected result rows.
struct JobResult {
  JobReport report;
  std::vector<Row> output_rows;
};

/// Runs one MapReduce job to completion on the cluster: splits, pull-based
/// locality scheduling over the persistent tracker pools, combiner, sorted
/// shuffle (pipelined with the map phase by default), reduce, output commit,
/// and job-scratch GC (shuffle runs + dcache files) on every exit path.
Result<JobResult> RunJob(MrCluster* cluster, const JobConf& conf);

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_ENGINE_H_
