#ifndef CLYDESDALE_MAPREDUCE_SHUFFLE_H_
#define CLYDESDALE_MAPREDUCE_SHUFFLE_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "hdfs/block.h"
#include "mapreduce/mr_types.h"
#include "mapreduce/task_context.h"

namespace clydesdale {
namespace mr {

class ClusterMetrics;

/// Map-side output buffer: partitions records, sorts each partition by key
/// at task end, and optionally applies a combiner — Hadoop's spill path,
/// collapsed to one in-memory spill.
class MapOutputBuffer final : public OutputCollector {
 public:
  MapOutputBuffer(Partitioner* partitioner, int num_partitions);

  Status Collect(const Row& key, const Row& value) override;

  /// Sorts each partition and, when a combiner is given, folds it over each
  /// key group. Returns the finished partitions (indexed by partition id).
  Result<std::vector<std::vector<KeyValue>>> Finish(Reducer* combiner,
                                                    TaskContext* context);

  uint64_t records() const { return records_; }

 private:
  friend class ShardedCollector;

  Partitioner* partitioner_;
  std::vector<std::vector<KeyValue>> partitions_;
  uint64_t records_ = 0;
};

/// Collector for multi-threaded map runners: every calling thread gets its
/// own MapOutputBuffer shard on first Collect, so the hot path touches only
/// thread-private state — no global lock per record (the old LockedCollector
/// serialised every Collect). The mutex is taken once per thread, at shard
/// creation. Finish concatenates the shards per partition and then sorts and
/// combines once. Requires a thread-safe (stateless) Partitioner; the stock
/// HashPartitioner qualifies.
class ShardedCollector final : public OutputCollector {
 public:
  ShardedCollector(Partitioner* partitioner, int num_partitions);

  Status Collect(const Row& key, const Row& value) override;

  /// Same contract as MapOutputBuffer::Finish, over the union of all shards.
  Result<std::vector<std::vector<KeyValue>>> Finish(Reducer* combiner,
                                                    TaskContext* context);

  uint64_t records() const;
  int num_shards() const;

 private:
  MapOutputBuffer* ShardForThisThread();

  /// Distinguishes this collector from any earlier one whose shard a thread
  /// may still have cached in its thread_local slot (monotone, never reused,
  /// so a recycled address can't alias a stale cache entry).
  const uint64_t id_;
  Partitioner* const partitioner_;
  const int num_partitions_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MapOutputBuffer>> shards_;
};

/// One map task's sorted output for one partition.
struct ShuffleRun {
  int map_task = 0;
  hdfs::NodeId map_node = hdfs::kNoNode;
  std::vector<KeyValue> records;
  uint64_t encoded_bytes = 0;
  /// LocalStore path of the encoded run on the map node ("" for runs built
  /// directly in tests). Reducers fetch it to charge the map node's disk.
  std::string local_path;
};

/// In-memory stand-in for the map-output files + HTTP fetch path. Thread-safe
/// producers (map tasks) / single consumer per partition (its reducer).
///
/// Two consumption modes: the barrier path takes a whole partition at once
/// after every producer finished (TakePartition); the pipelined path drains
/// runs incrementally as maps publish them (AwaitNewRuns), unblocking for
/// good once CloseProducers marks the map side done.
class ShuffleStore {
 public:
  /// `metrics` (optional) receives live publish/fetch counts and the
  /// bytes-in-flight gauge; the destructor rebalances the gauge for runs
  /// never fetched (aborted jobs), keeping it net-zero across jobs.
  explicit ShuffleStore(int num_partitions, ClusterMetrics* metrics = nullptr);
  ~ShuffleStore();

  /// Attributes published-but-unfetched run bytes to the publishing map
  /// node's MemTracker (vector indexed by NodeId; null entries disable that
  /// node). Charged at PublishRun, released when the run is fetched — or by
  /// the destructor for runs an aborted job never fetched, so trackers
  /// always drain to zero. Call before the first publish.
  void set_mem_trackers(
      std::vector<std::shared_ptr<obs::MemTracker>> trackers);

  /// Makes one map task's run visible to the partition's reducer. In the
  /// pipelined engine this happens the moment the map attempt succeeds —
  /// there is no job-wide barrier between publish and fetch.
  void PublishRun(int partition, ShuffleRun run);

  /// No further PublishRun calls will happen; wakes blocked reducers.
  void CloseProducers();

  /// All runs for a partition, ordered by map task index (determinism).
  std::vector<ShuffleRun> TakePartition(int partition);

  /// Blocks until the partition has unconsumed runs or producers are closed.
  /// Moves the new runs (arrival order) into `out` and returns true; returns
  /// false once closed and fully drained. Single consumer per partition.
  bool AwaitNewRuns(int partition, std::vector<ShuffleRun>* out);

  uint64_t total_bytes() const;

 private:
  /// Consume/Release run.encoded_bytes against the map node's tracker
  /// (no-ops for untracked nodes). Callers hold mu_.
  void ChargeRunLocked(const ShuffleRun& run);
  void ReleaseRunLocked(const ShuffleRun& run);

  ClusterMetrics* const metrics_;
  std::vector<std::shared_ptr<obs::MemTracker>> mem_trackers_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::vector<ShuffleRun>> partitions_;
  /// Per partition: how many runs the consumer already drained.
  std::vector<size_t> consumed_;
  uint64_t total_bytes_ = 0;
  /// Published-but-not-yet-fetched bytes (mirrors the in-flight gauge).
  uint64_t unfetched_bytes_ = 0;
  bool closed_ = false;
};

/// One record in merge order, tagged with its producing map task — the
/// tie-break that keeps incremental merging byte-identical to the barrier
/// k-way merge.
struct MergedRecord {
  KeyValue kv;
  int map_task = 0;
};

/// Incrementally merges sorted runs as they arrive. Total order is (key,
/// map task, in-run position): exactly what the barrier path's k-way heap
/// pops, so a reducer fed run-by-run produces byte-identical output no
/// matter how publish and fetch interleave.
class ShuffleMerger {
 public:
  /// Folds a batch of runs into the merged sequence (any arrival order).
  void Add(std::vector<ShuffleRun> runs);

  uint64_t input_records() const { return input_records_; }

  /// The fully merged sequence; the merger is empty afterwards.
  std::vector<MergedRecord> Take() { return std::move(merged_); }

 private:
  std::vector<MergedRecord> merged_;
  uint64_t input_records_ = 0;
};

/// Streams the merged sequence's key groups to `reducer` (Setup / Reduce per
/// group / Cleanup), recording group sizes into kHistReduceGroupSize.
Status ReduceMergedRecords(std::vector<MergedRecord> records, Reducer* reducer,
                           TaskContext* context, OutputCollector* out,
                           uint64_t* input_groups);

/// Merges the sorted runs and streams key groups to `reducer`. Ties between
/// runs break by map task index, matching the order a stable sort over the
/// by-task concatenation would produce. Barrier-mode convenience over
/// ShuffleMerger + ReduceMergedRecords.
Status ReducePartition(std::vector<ShuffleRun> runs, Reducer* reducer,
                       TaskContext* context, OutputCollector* out,
                       uint64_t* input_records, uint64_t* input_groups);

/// Sum of encoded key+value bytes of a record (shuffle accounting unit).
uint64_t EncodedKeyValueBytes(const Row& key, const Row& value);

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_SHUFFLE_H_
