#include "mapreduce/straggler.h"

#include <algorithm>

namespace clydesdale {
namespace mr {

namespace {

int64_t MedianOf(const std::vector<int64_t>& sorted, int min_completed) {
  if (static_cast<int>(sorted.size()) < min_completed || sorted.empty()) {
    return -1;
  }
  const size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return (sorted[n / 2 - 1] + sorted[n / 2]) / 2;
}

}  // namespace

StragglerDetector::StragglerDetector(StragglerPolicy policy)
    : policy_(policy) {}

void StragglerDetector::RecordCompletion(bool is_map, int64_t duration_us) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int64_t>& durations = is_map ? map_durations_ : reduce_durations_;
  durations.insert(
      std::upper_bound(durations.begin(), durations.end(), duration_us),
      duration_us);
}

int64_t StragglerDetector::RunningMedianMicros(bool is_map) const {
  std::lock_guard<std::mutex> lock(mu_);
  return MedianOf(is_map ? map_durations_ : reduce_durations_,
                  policy_.min_completed);
}

bool StragglerDetector::IsStraggler(bool is_map, int64_t elapsed_us) const {
  if (elapsed_us < policy_.min_elapsed_us) return false;
  const int64_t median = RunningMedianMicros(is_map);
  if (median < 0) return false;
  return static_cast<double>(elapsed_us) >
         policy_.threshold * static_cast<double>(median);
}

}  // namespace mr
}  // namespace clydesdale
