#include "mapreduce/shuffle.h"

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "common/logging.h"
#include "mapreduce/cluster_metrics.h"
#include "mapreduce/counters.h"
#include "mapreduce/job_trace.h"
#include "storage/row_codec.h"

namespace clydesdale {
namespace mr {

namespace {
bool KeyLess(const KeyValue& a, const KeyValue& b) {
  return a.key.Compare(b.key) < 0;
}

/// Collector that appends into a vector (combiner output, reducer staging).
class VectorCollector final : public OutputCollector {
 public:
  explicit VectorCollector(std::vector<KeyValue>* out) : out_(out) {}
  Status Collect(const Row& key, const Row& value) override {
    out_->push_back(KeyValue{key, value});
    return Status::OK();
  }

 private:
  std::vector<KeyValue>* out_;
};

/// Sorts one partition by key and, when a combiner is given, folds it over
/// each key group in place. Shared by MapOutputBuffer::Finish and
/// ShardedCollector::Finish.
Status SortAndCombinePartition(std::vector<KeyValue>* partition,
                               Reducer* combiner, TaskContext* context) {
  std::stable_sort(partition->begin(), partition->end(), KeyLess);
  if (combiner == nullptr || partition->empty()) return Status::OK();

  context->counters()->Add(kCounterCombineInputRecords,
                           static_cast<int64_t>(partition->size()));
  std::vector<KeyValue> combined;
  VectorCollector collector(&combined);
  CLY_RETURN_IF_ERROR(combiner->Setup(context));
  size_t group_start = 0;
  std::vector<Row> values;
  for (size_t i = 0; i <= partition->size(); ++i) {
    const bool boundary =
        i == partition->size() ||
        (*partition)[i].key.Compare((*partition)[group_start].key) != 0;
    if (!boundary) continue;
    values.clear();
    for (size_t j = group_start; j < i; ++j) {
      values.push_back((*partition)[j].value);
    }
    CLY_RETURN_IF_ERROR(combiner->Reduce((*partition)[group_start].key, values,
                                         context, &collector));
    group_start = i;
  }
  CLY_RETURN_IF_ERROR(combiner->Cleanup(context, &collector));
  context->counters()->Add(kCounterCombineOutputRecords,
                           static_cast<int64_t>(combined.size()));
  *partition = std::move(combined);
  // A combiner must preserve key order for the merge; ours produce one
  // output per group in order, but guard against user combiners that don't.
  CLY_DCHECK(std::is_sorted(partition->begin(), partition->end(), KeyLess));
  return Status::OK();
}
}  // namespace

uint64_t EncodedKeyValueBytes(const Row& key, const Row& value) {
  return storage::EncodedRowSize(key) + storage::EncodedRowSize(value) + 8;
}

MapOutputBuffer::MapOutputBuffer(Partitioner* partitioner, int num_partitions)
    : partitioner_(partitioner),
      partitions_(static_cast<size_t>(std::max(num_partitions, 1))) {}

Status MapOutputBuffer::Collect(const Row& key, const Row& value) {
  const int p = partitions_.size() == 1
                    ? 0
                    : partitioner_->Partition(key, static_cast<int>(partitions_.size()));
  if (p < 0 || p >= static_cast<int>(partitions_.size())) {
    return Status::Internal("partitioner returned out-of-range partition");
  }
  partitions_[static_cast<size_t>(p)].push_back(KeyValue{key, value});
  ++records_;
  return Status::OK();
}

Result<std::vector<std::vector<KeyValue>>> MapOutputBuffer::Finish(
    Reducer* combiner, TaskContext* context) {
  obs::Span sort_span(context->trace(), "sort", "stage", context->task_index(),
                      context->node());
  for (auto& partition : partitions_) {
    CLY_RETURN_IF_ERROR(SortAndCombinePartition(&partition, combiner, context));
  }
  return std::move(partitions_);
}

ShardedCollector::ShardedCollector(Partitioner* partitioner,
                                   int num_partitions)
    : id_([] {
        static std::atomic<uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()),
      partitioner_(partitioner),
      num_partitions_(num_partitions) {}

MapOutputBuffer* ShardedCollector::ShardForThisThread() {
  // Cache the (collector id, shard) pair per thread: repeat Collects from
  // the same thread bypass the mutex entirely. The id check guards against
  // a stale entry left by a previous collector this thread fed.
  thread_local uint64_t cached_id = 0;
  thread_local MapOutputBuffer* cached_shard = nullptr;
  if (cached_id == id_) return cached_shard;

  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(
      std::make_unique<MapOutputBuffer>(partitioner_, num_partitions_));
  cached_id = id_;
  cached_shard = shards_.back().get();
  return cached_shard;
}

Status ShardedCollector::Collect(const Row& key, const Row& value) {
  return ShardForThisThread()->Collect(key, value);
}

uint64_t ShardedCollector::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->records();
  return total;
}

int ShardedCollector::num_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(shards_.size());
}

Result<std::vector<std::vector<KeyValue>>> ShardedCollector::Finish(
    Reducer* combiner, TaskContext* context) {
  // The "spill" of our collapsed spill path: concatenate shards, sort, and
  // (optionally) combine. One span covers it all.
  obs::Span sort_span(context->trace(), "sort", "stage", context->task_index(),
                      context->node());
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<KeyValue>> merged(
      static_cast<size_t>(std::max(num_partitions_, 1)));
  for (auto& shard : shards_) {
    for (size_t p = 0; p < merged.size(); ++p) {
      auto& from = shard->partitions_[p];
      merged[p].insert(merged[p].end(),
                       std::make_move_iterator(from.begin()),
                       std::make_move_iterator(from.end()));
      from.clear();
    }
  }
  for (auto& partition : merged) {
    CLY_RETURN_IF_ERROR(SortAndCombinePartition(&partition, combiner, context));
  }
  return merged;
}

ShuffleStore::ShuffleStore(int num_partitions, ClusterMetrics* metrics)
    : metrics_(metrics),
      partitions_(static_cast<size_t>(std::max(num_partitions, 1))),
      consumed_(static_cast<size_t>(std::max(num_partitions, 1)), 0) {}

ShuffleStore::~ShuffleStore() {
  // Aborted jobs leave published runs unfetched; settle the in-flight gauge
  // (and release their tracker charges) so both stay net-zero across jobs.
  if (metrics_ != nullptr && unfetched_bytes_ > 0) {
    metrics_->shuffle_bytes_inflight()->Add(
        -static_cast<int64_t>(unfetched_bytes_));
  }
  for (size_t p = 0; p < partitions_.size(); ++p) {
    for (size_t i = consumed_[p]; i < partitions_[p].size(); ++i) {
      ReleaseRunLocked(partitions_[p][i]);
    }
  }
}

void ShuffleStore::set_mem_trackers(
    std::vector<std::shared_ptr<obs::MemTracker>> trackers) {
  std::lock_guard<std::mutex> lock(mu_);
  mem_trackers_ = std::move(trackers);
}

void ShuffleStore::ChargeRunLocked(const ShuffleRun& run) {
  if (run.map_node == hdfs::kNoNode) return;
  const size_t n = static_cast<size_t>(run.map_node);
  if (n >= mem_trackers_.size() || mem_trackers_[n] == nullptr) return;
  mem_trackers_[n]->Consume(static_cast<int64_t>(run.encoded_bytes));
}

void ShuffleStore::ReleaseRunLocked(const ShuffleRun& run) {
  if (run.map_node == hdfs::kNoNode) return;
  const size_t n = static_cast<size_t>(run.map_node);
  if (n >= mem_trackers_.size() || mem_trackers_[n] == nullptr) return;
  mem_trackers_[n]->Release(static_cast<int64_t>(run.encoded_bytes));
}

void ShuffleStore::PublishRun(int partition, ShuffleRun run) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    total_bytes_ += run.encoded_bytes;
    unfetched_bytes_ += run.encoded_bytes;
    ChargeRunLocked(run);
    if (metrics_ != nullptr) {
      metrics_->shuffle_runs_published()->Inc();
      metrics_->shuffle_bytes_inflight()->Add(
          static_cast<int64_t>(run.encoded_bytes));
    }
    partitions_[static_cast<size_t>(partition)].push_back(std::move(run));
  }
  cv_.notify_all();
}

void ShuffleStore::CloseProducers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<ShuffleRun> ShuffleStore::TakePartition(int partition) {
  std::lock_guard<std::mutex> lock(mu_);
  auto runs = std::move(partitions_[static_cast<size_t>(partition)]);
  partitions_[static_cast<size_t>(partition)].clear();
  // The consumer may have drained a prefix via AwaitNewRuns already; only
  // the rest counts as fetched now.
  const size_t already = consumed_[static_cast<size_t>(partition)];
  consumed_[static_cast<size_t>(partition)] = 0;
  uint64_t bytes = 0;
  for (size_t i = already; i < runs.size(); ++i) {
    bytes += runs[i].encoded_bytes;
    ReleaseRunLocked(runs[i]);
  }
  unfetched_bytes_ -= bytes;
  if (metrics_ != nullptr && runs.size() > already) {
    metrics_->shuffle_runs_fetched()->Add(
        static_cast<int64_t>(runs.size() - already));
    metrics_->shuffle_bytes_inflight()->Add(-static_cast<int64_t>(bytes));
  }
  std::sort(runs.begin(), runs.end(),
            [](const ShuffleRun& a, const ShuffleRun& b) {
              return a.map_task < b.map_task;
            });
  return runs;
}

bool ShuffleStore::AwaitNewRuns(int partition, std::vector<ShuffleRun>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  auto& runs = partitions_[static_cast<size_t>(partition)];
  size_t& consumed = consumed_[static_cast<size_t>(partition)];
  cv_.wait(lock, [&] { return closed_ || consumed < runs.size(); });
  if (consumed >= runs.size()) return false;  // closed and drained
  uint64_t bytes = 0;
  for (size_t i = consumed; i < runs.size(); ++i) {
    bytes += runs[i].encoded_bytes;
    ReleaseRunLocked(runs[i]);
    out->push_back(std::move(runs[i]));
  }
  unfetched_bytes_ -= bytes;
  if (metrics_ != nullptr) {
    metrics_->shuffle_runs_fetched()->Add(
        static_cast<int64_t>(runs.size() - consumed));
    metrics_->shuffle_bytes_inflight()->Add(-static_cast<int64_t>(bytes));
  }
  consumed = runs.size();
  return true;
}

uint64_t ShuffleStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

namespace {
/// The merge's total order: key, then producing map task. In-run position
/// never needs comparing — equivalent records always come from the same run
/// (one run per map task per partition), and both the per-run sort and the
/// stable inplace_merge below preserve in-run order among equivalents.
bool MergedLess(const MergedRecord& a, const MergedRecord& b) {
  const int c = a.kv.key.Compare(b.kv.key);
  if (c != 0) return c < 0;
  return a.map_task < b.map_task;
}
}  // namespace

void ShuffleMerger::Add(std::vector<ShuffleRun> runs) {
  for (ShuffleRun& run : runs) {
    input_records_ += run.records.size();
    const size_t old_size = merged_.size();
    merged_.reserve(old_size + run.records.size());
    for (KeyValue& kv : run.records) {
      merged_.push_back(MergedRecord{std::move(kv), run.map_task});
    }
    // Each run arrives key-sorted with a single map_task, so it is already
    // sorted under MergedLess; one stable merge folds it in.
    std::inplace_merge(merged_.begin(),
                       merged_.begin() + static_cast<ptrdiff_t>(old_size),
                       merged_.end(), MergedLess);
  }
}

Status ReduceMergedRecords(std::vector<MergedRecord> records, Reducer* reducer,
                           TaskContext* context, OutputCollector* out,
                           uint64_t* input_groups) {
  obs::Span merge_span(context->trace(), "merge-reduce", "stage",
                       context->task_index(), context->node());
  *input_groups = 0;

  // Group sizes go into a task-local histogram first: the registry's mutex
  // must not be touched once per key group on this hot path.
  obs::Histogram group_sizes;

  CLY_RETURN_IF_ERROR(reducer->Setup(context));
  Row group_key;
  std::vector<Row> values;
  for (MergedRecord& record : records) {
    if (!values.empty() && record.kv.key.Compare(group_key) != 0) {
      CLY_RETURN_IF_ERROR(reducer->Reduce(group_key, values, context, out));
      ++*input_groups;
      group_sizes.Record(static_cast<int64_t>(values.size()));
      values.clear();
    }
    if (values.empty()) group_key = record.kv.key;
    values.push_back(std::move(record.kv.value));
  }
  if (!values.empty()) {
    CLY_RETURN_IF_ERROR(reducer->Reduce(group_key, values, context, out));
    ++*input_groups;
    group_sizes.Record(static_cast<int64_t>(values.size()));
  }
  if (context->histograms() != nullptr) {
    context->histograms()->Get(kHistReduceGroupSize)->MergeFrom(group_sizes);
  }
  return reducer->Cleanup(context, out);
}

Status ReducePartition(std::vector<ShuffleRun> runs, Reducer* reducer,
                       TaskContext* context, OutputCollector* out,
                       uint64_t* input_records, uint64_t* input_groups) {
  ShuffleMerger merger;
  merger.Add(std::move(runs));
  *input_records = merger.input_records();
  return ReduceMergedRecords(merger.Take(), reducer, context, out,
                             input_groups);
}

}  // namespace mr
}  // namespace clydesdale
