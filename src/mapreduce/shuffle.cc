#include "mapreduce/shuffle.h"

#include <algorithm>

#include "common/logging.h"
#include "mapreduce/counters.h"
#include "storage/row_codec.h"

namespace clydesdale {
namespace mr {

namespace {
bool KeyLess(const KeyValue& a, const KeyValue& b) {
  return a.key.Compare(b.key) < 0;
}

/// Collector that appends into a vector (combiner output, reducer staging).
class VectorCollector final : public OutputCollector {
 public:
  explicit VectorCollector(std::vector<KeyValue>* out) : out_(out) {}
  Status Collect(const Row& key, const Row& value) override {
    out_->push_back(KeyValue{key, value});
    return Status::OK();
  }

 private:
  std::vector<KeyValue>* out_;
};
}  // namespace

uint64_t EncodedKeyValueBytes(const Row& key, const Row& value) {
  return storage::EncodedRowSize(key) + storage::EncodedRowSize(value) + 8;
}

MapOutputBuffer::MapOutputBuffer(Partitioner* partitioner, int num_partitions)
    : partitioner_(partitioner),
      partitions_(static_cast<size_t>(std::max(num_partitions, 1))) {}

Status MapOutputBuffer::Collect(const Row& key, const Row& value) {
  const int p = partitions_.size() == 1
                    ? 0
                    : partitioner_->Partition(key, static_cast<int>(partitions_.size()));
  if (p < 0 || p >= static_cast<int>(partitions_.size())) {
    return Status::Internal("partitioner returned out-of-range partition");
  }
  partitions_[static_cast<size_t>(p)].push_back(KeyValue{key, value});
  ++records_;
  return Status::OK();
}

Result<std::vector<std::vector<KeyValue>>> MapOutputBuffer::Finish(
    Reducer* combiner, TaskContext* context) {
  for (auto& partition : partitions_) {
    std::stable_sort(partition.begin(), partition.end(), KeyLess);
    if (combiner == nullptr || partition.empty()) continue;

    context->counters()->Add(kCounterCombineInputRecords,
                             static_cast<int64_t>(partition.size()));
    std::vector<KeyValue> combined;
    VectorCollector collector(&combined);
    CLY_RETURN_IF_ERROR(combiner->Setup(context));
    size_t group_start = 0;
    std::vector<Row> values;
    for (size_t i = 0; i <= partition.size(); ++i) {
      const bool boundary =
          i == partition.size() ||
          partition[i].key.Compare(partition[group_start].key) != 0;
      if (!boundary) continue;
      values.clear();
      for (size_t j = group_start; j < i; ++j) {
        values.push_back(partition[j].value);
      }
      CLY_RETURN_IF_ERROR(combiner->Reduce(partition[group_start].key, values,
                                           context, &collector));
      group_start = i;
    }
    CLY_RETURN_IF_ERROR(combiner->Cleanup(context, &collector));
    context->counters()->Add(kCounterCombineOutputRecords,
                             static_cast<int64_t>(combined.size()));
    partition = std::move(combined);
    // A combiner must preserve key order for the merge; ours produce one
    // output per group in order, but guard against user combiners that don't.
    CLY_DCHECK(std::is_sorted(partition.begin(), partition.end(), KeyLess));
  }
  return std::move(partitions_);
}

ShuffleStore::ShuffleStore(int num_partitions)
    : partitions_(static_cast<size_t>(std::max(num_partitions, 1))) {}

void ShuffleStore::AddRun(int partition, ShuffleRun run) {
  std::lock_guard<std::mutex> lock(mu_);
  total_bytes_ += run.encoded_bytes;
  partitions_[static_cast<size_t>(partition)].push_back(std::move(run));
}

std::vector<ShuffleRun> ShuffleStore::TakePartition(int partition) {
  std::lock_guard<std::mutex> lock(mu_);
  auto runs = std::move(partitions_[static_cast<size_t>(partition)]);
  partitions_[static_cast<size_t>(partition)].clear();
  std::sort(runs.begin(), runs.end(),
            [](const ShuffleRun& a, const ShuffleRun& b) {
              return a.map_task < b.map_task;
            });
  return runs;
}

uint64_t ShuffleStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

Status ReducePartition(std::vector<ShuffleRun> runs, Reducer* reducer,
                       TaskContext* context, OutputCollector* out,
                       uint64_t* input_records, uint64_t* input_groups) {
  // Merge the sorted runs. Run count is modest (== map tasks), so a simple
  // concatenate + stable sort keeps the code obvious; stability plus the
  // by-task-index run order makes value order deterministic.
  std::vector<KeyValue> merged;
  size_t total = 0;
  for (const ShuffleRun& run : runs) total += run.records.size();
  merged.reserve(total);
  for (ShuffleRun& run : runs) {
    for (KeyValue& kv : run.records) merged.push_back(std::move(kv));
  }
  std::stable_sort(merged.begin(), merged.end(), KeyLess);

  *input_records = merged.size();
  *input_groups = 0;

  CLY_RETURN_IF_ERROR(reducer->Setup(context));
  size_t group_start = 0;
  std::vector<Row> values;
  for (size_t i = 0; i <= merged.size(); ++i) {
    const bool boundary = i == merged.size() ||
                          merged[i].key.Compare(merged[group_start].key) != 0;
    if (!boundary) continue;
    if (i == group_start) break;  // empty input
    values.clear();
    values.reserve(i - group_start);
    for (size_t j = group_start; j < i; ++j) {
      values.push_back(std::move(merged[j].value));
    }
    CLY_RETURN_IF_ERROR(
        reducer->Reduce(merged[group_start].key, values, context, out));
    ++*input_groups;
    group_start = i;
  }
  return reducer->Cleanup(context, out);
}

}  // namespace mr
}  // namespace clydesdale
