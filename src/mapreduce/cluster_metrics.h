#ifndef CLYDESDALE_MAPREDUCE_CLUSTER_METRICS_H_
#define CLYDESDALE_MAPREDUCE_CLUSTER_METRICS_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace clydesdale {
namespace mr {

// Conf keys gating the live-observability subsystem.
inline constexpr const char kConfMetricsEnabled[] = "obs.metrics.enabled";
inline constexpr const char kConfMetricsIntervalMs[] = "obs.metrics.interval_ms";
inline constexpr const char kConfMetricsDir[] = "obs.metrics.dir";
inline constexpr const char kConfHistoryEnabled[] = "obs.history.enabled";
inline constexpr const char kConfStragglerThreshold[] = "obs.straggler.threshold";
inline constexpr const char kConfStragglerMinCompleted[] =
    "obs.straggler.min_completed";
inline constexpr const char kConfProfileEnabled[] = "obs.profile.enabled";
/// Hierarchical memory accounting (obs::MemTracker tree). On by default;
/// turning it off removes the tree entirely (no trackers created, no
/// gauges updated) for A/B overhead measurement.
inline constexpr const char kConfMemTrackingEnabled[] = "obs.mem.enabled";
/// Engine-computed estimate of the job's dimension hash-table footprint
/// (bytes), consulted by admission control against JobConf::mem_budget_bytes.
inline constexpr const char kConfMemEstimateBytes[] = "obs.mem.estimate_bytes";

// Metric family names (the mapreduce layer's exposition contract — what the
// Hadoop JobTracker UI would scrape). scripts/check_counters.sh and the
// audit test keep this list in sync with StandardMetricFamilyNames().
inline constexpr const char kMetricRunningMaps[] = "mr_running_map_tasks";
inline constexpr const char kMetricRunningReduces[] = "mr_running_reduce_tasks";
inline constexpr const char kMetricQueuedMaps[] = "mr_queued_map_attempts";
inline constexpr const char kMetricQueuedReduces[] = "mr_queued_reduce_attempts";
inline constexpr const char kMetricAttemptsFinished[] =
    "mr_task_attempts_finished_total";
inline constexpr const char kMetricAttemptDuration[] =
    "mr_task_attempt_duration_micros";
inline constexpr const char kMetricShuffleRunsPublished[] =
    "mr_shuffle_runs_published_total";
inline constexpr const char kMetricShuffleRunsFetched[] =
    "mr_shuffle_runs_fetched_total";
inline constexpr const char kMetricShuffleBytesInflight[] =
    "mr_shuffle_bytes_inflight";
inline constexpr const char kMetricStragglersRunning[] =
    "mr_straggler_attempts_running";
inline constexpr const char kMetricStragglersTotal[] =
    "mr_straggler_attempts_total";
inline constexpr const char kMetricJobsRunning[] = "mr_jobs_running";
// MemTracker tree exposition, labeled {node="N"}: current and high-water
// tracked bytes per node, and the same aggregated over every job tracker
// currently parented under that node. Sampled by the MetricsPoller.
inline constexpr const char kMetricMemNodeBytes[] = "cly_mem_node_bytes";
inline constexpr const char kMetricMemNodePeakBytes[] =
    "cly_mem_node_peak_bytes";
inline constexpr const char kMetricMemJobBytes[] = "cly_mem_job_bytes";
inline constexpr const char kMetricMemJobPeakBytes[] =
    "cly_mem_job_peak_bytes";
// Serving-mode cross-query dim-table cache footprint (resident bytes and
// entry count), sampled by the MetricsPoller through MrCluster's cache
// stats probe. Zero unless a query server is attached.
inline constexpr const char kMetricCacheBytes[] = "cly_cache_bytes";
inline constexpr const char kMetricCacheEntries[] = "cly_cache_entries";

/// Every kMetric* family name above, for the sync audit.
std::vector<std::string> StandardMetricFamilyNames();

/// Pre-resolved handles into a MetricsRegistry for the executor hot path:
/// one atomic cell per gauge/counter so claims and finishes never touch the
/// registry maps. Owned by MrCluster (one per cluster, like the JobTracker's
/// live stats), shared by every concurrently running JobRunner.
class ClusterMetrics {
 public:
  /// Registers all standard families in `registry` and resolves per-node
  /// children for nodes [0, num_nodes).
  ClusterMetrics(obs::MetricsRegistry* registry, int num_nodes);

  ClusterMetrics(const ClusterMetrics&) = delete;
  ClusterMetrics& operator=(const ClusterMetrics&) = delete;

  int num_nodes() const { return static_cast<int>(running_maps_.size()); }

  // Per-node slot occupancy, labeled {node="N"}.
  obs::Gauge* running_maps(int node) { return running_maps_[node]; }
  obs::Gauge* running_reduces(int node) { return running_reduces_[node]; }

  // Scheduler queue depth (attempts not yet claimed by any tracker).
  obs::Gauge* queued_maps() { return queued_maps_; }
  obs::Gauge* queued_reduces() { return queued_reduces_; }

  // Attempt outcomes, labeled {kind,outcome}; kind is "map"/"reduce",
  // outcome is "succeeded"/"failed"/"killed".
  obs::Counter* attempts_finished(bool is_map, const std::string& outcome);
  obs::Histogram* attempt_duration(bool is_map) {
    return is_map ? map_duration_ : reduce_duration_;
  }

  // Pipelined shuffle: published vs fetched runs and the bytes published
  // but not yet taken by a reducer.
  obs::Counter* shuffle_runs_published() { return shuffle_runs_published_; }
  obs::Counter* shuffle_runs_fetched() { return shuffle_runs_fetched_; }
  obs::Gauge* shuffle_bytes_inflight() { return shuffle_bytes_inflight_; }

  // Online straggler detector: currently-flagged attempts and the monotone
  // total of flag events.
  obs::Gauge* stragglers_running() { return stragglers_running_; }
  obs::Counter* stragglers_total() { return stragglers_total_; }

  obs::Gauge* jobs_running() { return jobs_running_; }

  // MemTracker exposition, labeled {node="N"} (poller-sampled).
  obs::Gauge* mem_node_bytes(int node) { return mem_node_bytes_[node]; }
  obs::Gauge* mem_node_peak_bytes(int node) {
    return mem_node_peak_bytes_[node];
  }
  obs::Gauge* mem_job_bytes(int node) { return mem_job_bytes_[node]; }
  obs::Gauge* mem_job_peak_bytes(int node) { return mem_job_peak_bytes_[node]; }

  // Serving-mode dim-table cache exposition (poller-sampled).
  obs::Gauge* cache_bytes() { return cache_bytes_; }
  obs::Gauge* cache_entries() { return cache_entries_; }

 private:
  obs::MetricsRegistry* const registry_;

  std::vector<obs::Gauge*> running_maps_;
  std::vector<obs::Gauge*> running_reduces_;
  obs::Gauge* queued_maps_;
  obs::Gauge* queued_reduces_;
  obs::MetricFamily* attempts_finished_;
  obs::Histogram* map_duration_;
  obs::Histogram* reduce_duration_;
  obs::Counter* shuffle_runs_published_;
  obs::Counter* shuffle_runs_fetched_;
  obs::Gauge* shuffle_bytes_inflight_;
  obs::Gauge* stragglers_running_;
  obs::Counter* stragglers_total_;
  obs::Gauge* jobs_running_;
  std::vector<obs::Gauge*> mem_node_bytes_;
  std::vector<obs::Gauge*> mem_node_peak_bytes_;
  std::vector<obs::Gauge*> mem_job_bytes_;
  std::vector<obs::Gauge*> mem_job_peak_bytes_;
  obs::Gauge* cache_bytes_;
  obs::Gauge* cache_entries_;
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_CLUSTER_METRICS_H_
