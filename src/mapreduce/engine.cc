#include "mapreduce/engine.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "mapreduce/input_format.h"
#include "mapreduce/job_trace.h"
#include "mapreduce/map_runner.h"
#include "mapreduce/scheduler.h"
#include "mapreduce/shuffle.h"
#include "obs/trace.h"

namespace clydesdale {
namespace mr {

MrCluster::MrCluster(ClusterOptions options)
    : options_(options),
      dfs_([&options] {
        hdfs::DfsOptions dfs_options;
        dfs_options.num_nodes = options.num_nodes;
        dfs_options.block_size = options.dfs_block_size;
        dfs_options.replication = options.dfs_replication;
        return dfs_options;
      }()) {
  local_stores_.reserve(static_cast<size_t>(options_.num_nodes));
  for (int n = 0; n < options_.num_nodes; ++n) {
    local_stores_.push_back(std::make_unique<hdfs::LocalStore>(n));
  }
}

Result<storage::TableDesc> MrCluster::GetTable(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_cache_.find(path);
    if (it != table_cache_.end()) return it->second;
  }
  CLY_ASSIGN_OR_RETURN(storage::TableDesc desc,
                       storage::LoadTableDesc(dfs_, path));
  std::lock_guard<std::mutex> lock(mu_);
  table_cache_[path] = desc;
  return desc;
}

void MrCluster::InvalidateTable(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  table_cache_.erase(path);
}

std::shared_ptr<SharedJvmState> MrCluster::SharedStateFor(int64_t job_instance,
                                                          hdfs::NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = shared_states_[{job_instance, node}];
  if (slot == nullptr) slot = std::make_shared<SharedJvmState>();
  return slot;
}

int64_t MrCluster::NextJobInstance() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_job_instance_++;
}

namespace {

/// Collector for map-only jobs: records go straight to the output format.
class OutputFormatCollector final : public OutputCollector {
 public:
  explicit OutputFormatCollector(OutputFormat* out) : out_(out) {}

  Status Collect(const Row& key, const Row& value) override {
    records_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(EncodedKeyValueBytes(key, value),
                     std::memory_order_relaxed);
    return out_->Write(key, value);
  }

  uint64_t records() const { return records_.load(std::memory_order_relaxed); }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  OutputFormat* out_;
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> bytes_{0};
};

/// Copies every distributed-cache file from DFS onto every node's local
/// disk, once per node per job (paper §6.1: Hive's mapjoin dissemination).
Status DistributeCache(MrCluster* cluster, const JobConf& conf,
                       Counters* counters) {
  for (const std::string& dfs_path : conf.distributed_cache) {
    CLY_ASSIGN_OR_RETURN(std::string contents,
                         cluster->dfs()->ReadFileToString(dfs_path));
    const std::string local_path =
        StrCat("/dcache/", conf.GetInt("mr.job.instance"), dfs_path);
    std::vector<uint8_t> bytes(contents.begin(), contents.end());
    for (int n = 0; n < cluster->num_nodes(); ++n) {
      CLY_RETURN_IF_ERROR(
          cluster->local_store(n)->Write(local_path, bytes));
      counters->Add(kCounterDistCacheBytes,
                    static_cast<int64_t>(bytes.size()));
    }
  }
  return Status::OK();
}

struct MapTaskOutcome {
  Status status;
  TaskReport report;
};

}  // namespace

Result<JobResult> RunJob(MrCluster* cluster, const JobConf& user_conf) {
  Stopwatch job_timer;
  JobConf conf = user_conf;
  const int64_t instance = cluster->NextJobInstance();
  conf.SetInt("mr.job.instance", instance);

  if (!conf.input_format_factory) {
    return Status::InvalidArgument("job has no input format");
  }
  if (!conf.output_format_factory) {
    return Status::InvalidArgument("job has no output format");
  }
  if (conf.num_reduce_tasks > 0 && !conf.reducer_factory) {
    return Status::InvalidArgument(
        "job has reduce tasks but no reducer factory");
  }

  JobReport report;
  report.job_name = conf.job_name;
  report.num_nodes = cluster->num_nodes();
  const uint64_t dfs_written_before = cluster->dfs()->TotalIo().bytes_written;

  // A null recorder pointer is how "tracing off" reaches every Span below:
  // spans constructed against nullptr cost two stores.
  obs::TraceRecorder trace_recorder;
  obs::TraceRecorder* trace =
      conf.GetBool(kConfTraceEnabled) ? &trace_recorder : nullptr;
  ScopedLogContext job_log_context(conf.job_name);
  obs::Span job_span(trace, conf.job_name, "job");
  obs::Span setup_span(trace, "setup", "phase");

  std::unique_ptr<InputFormat> input_format = conf.input_format_factory();
  std::unique_ptr<OutputFormat> output_format = conf.output_format_factory();
  CLY_RETURN_IF_ERROR(output_format->Open(cluster, conf));
  CLY_RETURN_IF_ERROR(DistributeCache(cluster, conf, &report.counters));

  CLY_ASSIGN_OR_RETURN(std::vector<std::shared_ptr<InputSplit>> splits,
                       input_format->GetSplits(cluster, conf));
  std::vector<ScheduledTask> scheduled =
      ScheduleMapTasks(splits, cluster->num_nodes());
  setup_span.End();

  const int num_reduces = std::max(conf.num_reduce_tasks, 0);
  const bool map_only = num_reduces == 0;
  ShuffleStore shuffle(std::max(num_reduces, 1));
  OutputFormatCollector direct_out(output_format.get());

  // --- map phase -------------------------------------------------------------
  // Per-node FIFO queues; each node runs `concurrency` task-slots worth of
  // worker threads (1 when the job asked for a single task per node, in which
  // case the task itself may use all the node's slots).
  const int slots = cluster->options().map_slots_per_node;
  const int concurrency = conf.single_task_per_node ? 1 : slots;
  const int task_threads = conf.single_task_per_node ? slots : 1;

  std::vector<std::deque<const ScheduledTask*>> queues(
      static_cast<size_t>(cluster->num_nodes()));
  for (const ScheduledTask& task : scheduled) {
    queues[static_cast<size_t>(task.node)].push_back(&task);
  }

  std::vector<MapTaskOutcome> outcomes(scheduled.size());
  std::vector<std::mutex> queue_mu(static_cast<size_t>(cluster->num_nodes()));

  auto run_map_task = [&](const ScheduledTask& task) {
    Stopwatch timer;
    MapTaskOutcome& outcome = outcomes[static_cast<size_t>(task.task_index)];

    std::shared_ptr<SharedJvmState> shared =
        conf.jvm_reuse ? cluster->SharedStateFor(instance, task.node)
                       : std::make_shared<SharedJvmState>();
    TaskContext context(&conf, cluster, task.task_index, task.node,
                        task_threads, shared, &report.counters, trace,
                        &report.histograms);
    ScopedLogContext task_log_context(context.DebugLabel(/*is_map=*/true));
    obs::Span task_span(trace, "map-task", "task", task.task_index, task.node);

    std::unique_ptr<MapRunner> runner =
        conf.map_runner_factory ? conf.map_runner_factory()
                                : std::make_unique<DefaultMapRunner>();

    uint64_t out_records = 0;
    uint64_t out_bytes = 0;
    if (map_only) {
      const uint64_t before_r = direct_out.records();
      const uint64_t before_b = direct_out.bytes();
      outcome.status = runner->Run(cluster, conf, *task.split,
                                   input_format.get(), &context, &direct_out);
      out_records = direct_out.records() - before_r;
      out_bytes = direct_out.bytes() - before_b;
    } else {
      std::unique_ptr<Partitioner> partitioner =
          conf.partitioner_factory ? conf.partitioner_factory()
                                   : std::make_unique<HashPartitioner>();
      // Sharded per-thread buffers: no lock on the per-record collect path
      // even when the map runner collects from many threads at once.
      ShardedCollector buffer(partitioner.get(), num_reduces);
      outcome.status = runner->Run(cluster, conf, *task.split,
                                   input_format.get(), &context, &buffer);
      if (outcome.status.ok()) {
        std::unique_ptr<Reducer> combiner =
            conf.combiner_factory ? conf.combiner_factory() : nullptr;
        out_records = buffer.records();
        auto finished = buffer.Finish(combiner.get(), &context);
        if (!finished.ok()) {
          outcome.status = finished.status();
        } else {
          for (int p = 0; p < num_reduces; ++p) {
            auto& partition = (*finished)[static_cast<size_t>(p)];
            if (partition.empty()) continue;
            ShuffleRun run;
            run.map_task = task.task_index;
            run.map_node = task.node;
            for (const KeyValue& kv : partition) {
              run.encoded_bytes += EncodedKeyValueBytes(kv.key, kv.value);
            }
            out_bytes += run.encoded_bytes;
            run.records = std::move(partition);
            shuffle.AddRun(p, std::move(run));
          }
        }
      }
    }

    TaskReport& tr = outcome.report;
    tr.index = task.task_index;
    tr.is_map = true;
    tr.node = task.node;
    tr.data_local = task.data_local;
    tr.num_constituents = static_cast<int>(task.split->Constituents().size());
    tr.hdfs_local_bytes = context.io_stats()->local_bytes_read;
    tr.hdfs_remote_bytes = context.io_stats()->remote_bytes_read;
    tr.local_disk_bytes = context.local_disk_bytes();
    tr.output_records = out_records;
    tr.output_bytes = out_bytes;
    task_span.End();
    tr.wall_seconds = timer.ElapsedSeconds();
    report.histograms.Get(kHistMapTaskMicros)->Record(timer.ElapsedMicros());
    if (context.io_stats()->read_ops > 0) {
      report.histograms.Get(kHistHdfsReadMicros)
          ->Record(static_cast<int64_t>(context.io_stats()->read_micros()));
    }

    report.counters.Add(kCounterHdfsReadOps,
                        static_cast<int64_t>(context.io_stats()->read_ops));
    report.counters.Add(kCounterHdfsReadMicros,
                        static_cast<int64_t>(context.io_stats()->read_micros()));
    report.counters.Add(kCounterHdfsBytesReadLocal,
                        static_cast<int64_t>(tr.hdfs_local_bytes));
    report.counters.Add(kCounterHdfsBytesReadRemote,
                        static_cast<int64_t>(tr.hdfs_remote_bytes));
    report.counters.Add(kCounterLocalBytesRead,
                        static_cast<int64_t>(tr.local_disk_bytes));
    report.counters.Add(kCounterMapOutputRecords,
                        static_cast<int64_t>(out_records));
    report.counters.Add(kCounterMapOutputBytes,
                        static_cast<int64_t>(out_bytes));
    report.counters.Add(
        task.data_local ? kCounterDataLocalMaps : kCounterRackRemoteMaps, 1);
  };

  {
    obs::Span map_phase_span(trace, "map-phase", "phase");
    std::vector<std::thread> workers;
    for (int n = 0; n < cluster->num_nodes(); ++n) {
      for (int s = 0; s < concurrency; ++s) {
        workers.emplace_back([&, n] {
          while (true) {
            const ScheduledTask* task = nullptr;
            {
              std::lock_guard<std::mutex> lock(queue_mu[static_cast<size_t>(n)]);
              auto& q = queues[static_cast<size_t>(n)];
              if (q.empty()) return;
              task = q.front();
              q.pop_front();
            }
            run_map_task(*task);
          }
        });
      }
    }
    for (std::thread& w : workers) w.join();
  }

  for (MapTaskOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) {
      return outcome.status.WithContext(
          StrCat(conf.job_name, " map task ", outcome.report.index));
    }
    report.map_tasks.push_back(std::move(outcome.report));
  }

  // --- reduce phase ----------------------------------------------------------
  if (!map_only) {
    obs::Span reduce_phase_span(trace, "reduce-phase", "phase");
    const std::vector<hdfs::NodeId> reduce_nodes =
        ScheduleReduceTasks(num_reduces, cluster->num_nodes());
    std::vector<MapTaskOutcome> reduce_outcomes(
        static_cast<size_t>(num_reduces));

    auto run_reduce_task = [&](int r) {
      Stopwatch timer;
      MapTaskOutcome& outcome = reduce_outcomes[static_cast<size_t>(r)];
      const hdfs::NodeId node = reduce_nodes[static_cast<size_t>(r)];
      TaskContext context(&conf, cluster, r, node, /*allowed_threads=*/1,
                          std::make_shared<SharedJvmState>(), &report.counters,
                          trace, &report.histograms);
      ScopedLogContext task_log_context(context.DebugLabel(/*is_map=*/false));
      obs::Span task_span(trace, "reduce-task", "task", r, node);

      Stopwatch fetch_timer;
      obs::Span fetch_span(trace, "shuffle-fetch", "stage", r, node);
      std::vector<ShuffleRun> runs = shuffle.TakePartition(r);
      fetch_span.End();
      report.histograms.Get(kHistShuffleFetchMicros)
          ->Record(fetch_timer.ElapsedMicros());

      TaskReport& tr = outcome.report;
      tr.index = r;
      tr.is_map = false;
      tr.node = node;
      obs::Histogram* fetch_bytes = report.histograms.Get(kHistShuffleFetchBytes);
      for (const ShuffleRun& run : runs) {
        tr.shuffle_bytes_total += run.encoded_bytes;
        if (run.map_node != node) tr.shuffle_bytes_remote += run.encoded_bytes;
        fetch_bytes->Record(static_cast<int64_t>(run.encoded_bytes));
      }

      std::unique_ptr<Reducer> reducer = conf.reducer_factory();
      OutputFormatCollector out(output_format.get());
      uint64_t in_records = 0, in_groups = 0;
      outcome.status = ReducePartition(std::move(runs), reducer.get(), &context,
                                       &out, &in_records, &in_groups);
      tr.input_records = in_records;
      tr.output_records = out.records();
      tr.output_bytes = out.bytes();
      tr.hdfs_local_bytes = context.io_stats()->local_bytes_read;
      tr.hdfs_remote_bytes = context.io_stats()->remote_bytes_read;
      task_span.End();
      tr.wall_seconds = timer.ElapsedSeconds();
      report.histograms.Get(kHistReduceTaskMicros)
          ->Record(timer.ElapsedMicros());

      report.counters.Add(kCounterReduceInputRecords,
                          static_cast<int64_t>(in_records));
      report.counters.Add(kCounterReduceInputGroups,
                          static_cast<int64_t>(in_groups));
      report.counters.Add(kCounterReduceOutputRecords,
                          static_cast<int64_t>(out.records()));
      report.counters.Add(kCounterShuffleBytes,
                          static_cast<int64_t>(tr.shuffle_bytes_total));
      report.counters.Add(kCounterShuffleBytesRemote,
                          static_cast<int64_t>(tr.shuffle_bytes_remote));
      report.counters.Add(kCounterHdfsReadOps,
                          static_cast<int64_t>(context.io_stats()->read_ops));
      report.counters.Add(
          kCounterHdfsReadMicros,
          static_cast<int64_t>(context.io_stats()->read_micros()));
    };

    std::vector<std::thread> reducers;
    reducers.reserve(static_cast<size_t>(num_reduces));
    for (int r = 0; r < num_reduces; ++r) {
      reducers.emplace_back(run_reduce_task, r);
    }
    for (std::thread& t : reducers) t.join();

    for (MapTaskOutcome& outcome : reduce_outcomes) {
      if (!outcome.status.ok()) {
        return outcome.status.WithContext(
            StrCat(conf.job_name, " reduce task ", outcome.report.index));
      }
      report.reduce_tasks.push_back(std::move(outcome.report));
    }
  }

  {
    obs::Span commit_span(trace, "commit", "phase");
    CLY_RETURN_IF_ERROR(output_format->Commit(cluster, conf));
  }
  // Bytes this job actually pushed into DFS (output commit, staged-join
  // intermediates): the delta of the cluster-wide write ledger.
  report.counters.Add(
      kCounterHdfsBytesWritten,
      static_cast<int64_t>(cluster->dfs()->TotalIo().bytes_written -
                           dfs_written_before));
  report.wall_seconds = job_timer.ElapsedSeconds();

  if (trace != nullptr) {
    job_span.End();
    report.spans = trace_recorder.Drain();
    const std::string trace_dir = conf.Get(kConfTraceDir);
    if (!trace_dir.empty()) {
      CLY_RETURN_IF_ERROR(WriteJobTrace(report, trace_dir, instance));
      CLY_LOG(Debug) << "wrote trace to " << trace_dir << "/" << conf.job_name
                     << "-" << instance << ".trace.json";
    }
  }

  JobResult result;
  result.output_rows = output_format->TakeRows();
  result.report = std::move(report);
  return result;
}

}  // namespace mr
}  // namespace clydesdale
