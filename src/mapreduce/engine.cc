#include "mapreduce/engine.h"

#include <algorithm>
#include <fstream>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "mapreduce/input_format.h"
#include "mapreduce/job_history.h"
#include "mapreduce/job_runner.h"
#include "mapreduce/job_trace.h"
#include "mapreduce/shuffle.h"
#include "obs/metrics_poller.h"
#include "obs/trace.h"

namespace clydesdale {
namespace mr {

MrCluster::MrCluster(ClusterOptions options)
    : options_(options),
      dfs_([&options] {
        hdfs::DfsOptions dfs_options;
        dfs_options.num_nodes = options.num_nodes;
        dfs_options.block_size = options.dfs_block_size;
        dfs_options.replication = options.dfs_replication;
        return dfs_options;
      }()) {
  local_stores_.reserve(static_cast<size_t>(options_.num_nodes));
  trackers_.reserve(static_cast<size_t>(options_.num_nodes));
  for (int n = 0; n < options_.num_nodes; ++n) {
    local_stores_.push_back(std::make_unique<hdfs::LocalStore>(n));
  }
  metrics_ =
      std::make_unique<ClusterMetrics>(&metrics_registry_, options_.num_nodes);
  mem_tracker_ = obs::MemTracker::Create("cluster");
  node_mem_trackers_.reserve(static_cast<size_t>(options_.num_nodes));
  for (int n = 0; n < options_.num_nodes; ++n) {
    node_mem_trackers_.push_back(
        obs::MemTracker::Create(obs::NodeTrackerName(n), mem_tracker_));
  }
  for (int n = 0; n < options_.num_nodes; ++n) {
    trackers_.push_back(std::make_unique<TaskTracker>(
        n, options_.map_slots_per_node, options_.reduce_slots_per_node));
  }
}

MrCluster::~MrCluster() {
  // A straggler worker finishing its last attempt calls WakeAllTrackers on
  // its way out, touching *sibling* trackers' condition variables. Destroying
  // trackers one by one would free tracker A's cv while tracker B's worker
  // can still poke it — so stop every pool before destroying any tracker.
  for (auto& tracker : trackers_) tracker->BeginShutdown();
  for (auto& tracker : trackers_) tracker->JoinWorkers();
}

void MrCluster::WakeAllTrackers() {
  for (auto& tracker : trackers_) tracker->Wake();
}

Result<storage::TableDesc> MrCluster::GetTable(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_cache_.find(path);
    if (it != table_cache_.end()) return it->second;
  }
  CLY_ASSIGN_OR_RETURN(storage::TableDesc desc,
                       storage::LoadTableDesc(dfs_, path));
  std::lock_guard<std::mutex> lock(mu_);
  table_cache_[path] = desc;
  return desc;
}

void MrCluster::InvalidateTable(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  table_cache_.erase(path);
  // First invalidation moves the implicit version 1 to 2; every later one
  // keeps counting. Serving caches key on (path, version), so this is the
  // reload-invalidation mechanism.
  ++table_versions_.try_emplace(path, 1).first->second;
}

int64_t MrCluster::table_version(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_versions_.find(path);
  return it == table_versions_.end() ? 1 : it->second;
}

void MrCluster::SetCacheStatsProbe(CacheStatsProbe probe) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_stats_probe_ = std::move(probe);
}

MrCluster::CacheStatsProbe MrCluster::cache_stats_probe() {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_stats_probe_;
}

std::shared_ptr<SharedJvmState> MrCluster::SharedStateFor(int64_t job_instance,
                                                          hdfs::NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = shared_states_[{job_instance, node}];
  if (slot == nullptr) slot = std::make_shared<SharedJvmState>();
  return slot;
}

void MrCluster::ReleaseJobState(int64_t job_instance) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shared_states_.lower_bound({job_instance, hdfs::NodeId{0}});
  while (it != shared_states_.end() && it->first.first == job_instance) {
    it = shared_states_.erase(it);
  }
}

int64_t MrCluster::NextJobInstance() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_job_instance_++;
}

namespace {

/// Copies every distributed-cache file from DFS onto every node's local
/// disk, once per node per job (paper §6.1: Hive's mapjoin dissemination).
Status DistributeCache(MrCluster* cluster, const JobConf& conf,
                       Counters* counters) {
  for (const std::string& dfs_path : conf.distributed_cache) {
    CLY_ASSIGN_OR_RETURN(std::string contents,
                         cluster->dfs()->ReadFileToString(dfs_path));
    const std::string local_path =
        StrCat("/dcache/", conf.GetInt("mr.job.instance"), dfs_path);
    std::vector<uint8_t> bytes(contents.begin(), contents.end());
    for (int n = 0; n < cluster->num_nodes(); ++n) {
      CLY_RETURN_IF_ERROR(
          cluster->local_store(n)->Write(local_path, bytes));
      counters->Add(kCounterDistCacheBytes,
                    static_cast<int64_t>(bytes.size()));
    }
  }
  return Status::OK();
}

/// Deletes the job's scratch from every node — encoded shuffle runs and
/// distributed-cache copies — and drops its JVM-reuse registry entries.
/// Without this, back-to-back jobs (an SSB sweep) leak simulated local disk.
void GarbageCollectJobScratch(MrCluster* cluster, int64_t instance) {
  const std::string shuffle_prefix = StrCat("/shuffle/", instance, "/");
  const std::string dcache_prefix = StrCat("/dcache/", instance, "/");
  uint64_t removed = 0;
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    removed += cluster->local_store(n)->DeleteWithPrefix(shuffle_prefix);
    removed += cluster->local_store(n)->DeleteWithPrefix(dcache_prefix);
  }
  cluster->ReleaseJobState(instance);
  if (removed > 0) {
    CLY_LOG(Debug) << "job " << instance << " scratch GC removed " << removed
                   << " local files";
  }
}

/// Runs the scratch GC on every exit path of RunJob, success or error.
struct ScratchGcGuard {
  MrCluster* cluster;
  int64_t instance;
  ~ScratchGcGuard() { GarbageCollectJobScratch(cluster, instance); }
};

/// Appends the derived "shuffle-overlap" span: the window between the first
/// reducer fetch and the end of the last map task. Synthesised post-drain
/// because the window straddles threads (a Span must start and end on one).
/// Category "overlap" keeps it out of the phase accounting — phase spans
/// tile the wall clock; this one deliberately overlaps map-phase.
void AppendShuffleOverlapSpan(std::vector<obs::SpanRecord>* spans) {
  int64_t last_map_end = 0;
  bool saw_map = false;
  int64_t first_fetch = 0;
  bool saw_fetch = false;
  for (const obs::SpanRecord& span : *spans) {
    if (span.name == "map-task") {
      saw_map = true;
      last_map_end = std::max(last_map_end, span.end_us());
    } else if (span.name == "shuffle-fetch") {
      if (!saw_fetch || span.start_us < first_fetch) {
        first_fetch = span.start_us;
      }
      saw_fetch = true;
    }
  }
  if (!saw_map || !saw_fetch || first_fetch >= last_map_end) return;
  obs::SpanRecord overlap;
  overlap.name = "shuffle-overlap";
  overlap.category = "overlap";
  overlap.start_us = first_fetch;
  overlap.dur_us = last_map_end - first_fetch;
  overlap.depth = 1;
  spans->push_back(std::move(overlap));
  std::stable_sort(spans->begin(), spans->end(),
                   [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
                     if (a.start_us != b.start_us) {
                       return a.start_us < b.start_us;
                     }
                     if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                     return a.depth < b.depth;
                   });
}

/// Writes `contents` to a real-filesystem path (trace/metrics artifacts).
Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path);
  file << contents;
  file.close();
  if (!file) return Status::IoError("short write to " + path);
  return Status::OK();
}

/// Text cluster dashboard over a sampled series: per-node slot occupancy
/// plus the cluster-wide queue/straggler rows.
std::string RenderClusterDashboard(const obs::MetricsTimeSeries& series,
                                   int num_nodes) {
  std::vector<obs::DashboardRow> rows;
  for (int n = 0; n < num_nodes; ++n) {
    rows.push_back({StrCat("maps@node", n),
                    StrCat(kMetricRunningMaps, "{node=\"", n, "\"}")});
  }
  for (int n = 0; n < num_nodes; ++n) {
    rows.push_back({StrCat("reduces@node", n),
                    StrCat(kMetricRunningReduces, "{node=\"", n, "\"}")});
  }
  for (int n = 0; n < num_nodes; ++n) {
    rows.push_back({StrCat("mem@node", n),
                    StrCat(kMetricMemNodeBytes, "{node=\"", n, "\"}")});
  }
  for (int n = 0; n < num_nodes; ++n) {
    rows.push_back({StrCat("jobmem@node", n),
                    StrCat(kMetricMemJobBytes, "{node=\"", n, "\"}")});
  }
  rows.push_back({"queued maps", kMetricQueuedMaps});
  rows.push_back({"queued reduces", kMetricQueuedReduces});
  rows.push_back({"stragglers", kMetricStragglersRunning});
  return obs::RenderDashboard(series, rows);
}

/// The job body shared by every exit path of RunJob. `report` stays owned by
/// the caller so an error return still leaves the partial counters/tasks
/// visible to the history recorder.
Result<JobResult> ExecuteJob(MrCluster* cluster, JobConf& conf,
                             int64_t instance, JobReport* report_out,
                             JobHistoryRecorder* history) {
  Stopwatch job_timer;

  if (!conf.input_format_factory) {
    return Status::InvalidArgument("job has no input format");
  }
  if (!conf.output_format_factory) {
    return Status::InvalidArgument("job has no output format");
  }
  if (conf.num_reduce_tasks > 0 && !conf.reducer_factory) {
    return Status::InvalidArgument(
        "job has reduce tasks but no reducer factory");
  }

  // Admission control: reject a job whose estimated dimension hash-table
  // footprint (engine-computed, typically from table statistics) already
  // exceeds its memory budget — before any task runs or scratch is written.
  // A breach discovered only at runtime still fails via the MemTracker's
  // TryConsume on the job's per-node trackers.
  if (conf.mem_budget_bytes > 0) {
    const int64_t estimate = conf.GetInt(kConfMemEstimateBytes, 0);
    if (estimate > static_cast<int64_t>(conf.mem_budget_bytes)) {
      return Status::ResourceExhausted(StrCat(
          "job '", conf.job_name, "' rejected at admission: estimated ",
          estimate, " bytes of dimension hash tables exceeds mem budget of ",
          conf.mem_budget_bytes, " bytes"));
    }
  }

  ScratchGcGuard scratch_gc{cluster, instance};

  JobReport& report = *report_out;
  report.job_name = conf.job_name;
  report.num_nodes = cluster->num_nodes();
  const uint64_t dfs_written_before = cluster->dfs()->TotalIo().bytes_written;

  // A null recorder pointer is how "tracing off" reaches every Span below:
  // spans constructed against nullptr cost two stores. Metrics follow the
  // same pattern: a null ClusterMetrics* through the runner means off.
  obs::TraceRecorder trace_recorder;
  obs::TraceRecorder* trace =
      conf.GetBool(kConfTraceEnabled) ? &trace_recorder : nullptr;
  ClusterMetrics* metrics =
      conf.GetBool(kConfMetricsEnabled) ? cluster->metrics() : nullptr;
  ScopedLogContext job_log_context(conf.job_name);
  obs::Span job_span(trace, conf.job_name, "job");
  obs::Span setup_span(trace, "setup", "phase");

  std::unique_ptr<InputFormat> input_format = conf.input_format_factory();
  std::unique_ptr<OutputFormat> output_format = conf.output_format_factory();
  CLY_RETURN_IF_ERROR(output_format->Open(cluster, conf));
  CLY_RETURN_IF_ERROR(DistributeCache(cluster, conf, &report.counters));

  CLY_ASSIGN_OR_RETURN(std::vector<std::shared_ptr<InputSplit>> splits,
                       input_format->GetSplits(cluster, conf));
  if (history != nullptr) {
    history->RecordJobSubmitted(cluster->num_nodes(),
                                static_cast<int>(splits.size()),
                                std::max(conf.num_reduce_tasks, 0));
  }

  // Map and reduce phases both run inside the runner: trackers pull attempts
  // (late-binding locality), maps publish shuffle runs as they finish, and
  // reducers fetch + merge those runs while the map phase is still going
  // (unless conf.pipelined_shuffle is off). The shared_ptr keeps the runner
  // alive for any tracker worker still unwinding after the job completes.
  // Construction (attempt table, scheduling policy) is still setup time.
  auto runner = std::make_shared<JobRunner>(
      cluster, &conf, instance, std::move(splits), input_format.get(),
      output_format.get(), &report, trace, metrics, history);
  // The poller samples the whole registry on its interval and sweeps the
  // runner's straggler probe first each tick. Declared after `runner` and
  // holding its own shared_ptr, so an early error return tears it down
  // (join) while the runner is still alive.
  std::unique_ptr<obs::MetricsPoller> poller;
  if (metrics != nullptr) {
    poller = std::make_unique<obs::MetricsPoller>(
        cluster->metrics_registry(),
        conf.GetInt(kConfMetricsIntervalMs, 5));
    poller->AddProbe([runner, cluster, metrics] {
      runner->PollLiveMetrics();
      // Sample the MemTracker tree into the labeled gauge families: node
      // totals straight off the per-node trackers, job totals off this
      // runner's per-(job, node) trackers (empty when obs.mem.enabled is
      // off, leaving the gauges at their last value — zero).
      const auto& job_trackers = runner->job_mem_trackers();
      for (int n = 0; n < cluster->num_nodes(); ++n) {
        const auto& node_tracker = cluster->node_mem_tracker(n);
        metrics->mem_node_bytes(n)->Set(node_tracker->consumed());
        metrics->mem_node_peak_bytes(n)->Set(node_tracker->peak());
        if (static_cast<size_t>(n) < job_trackers.size() &&
            job_trackers[static_cast<size_t>(n)] != nullptr) {
          const auto& job_tracker = job_trackers[static_cast<size_t>(n)];
          metrics->mem_job_bytes(n)->Set(job_tracker->consumed());
          metrics->mem_job_peak_bytes(n)->Set(job_tracker->peak());
        }
      }
      // Serving mode: sample the cross-query dim-table cache through the
      // cluster's type-erased probe. No server attached → gauges stay 0.
      if (MrCluster::CacheStatsProbe probe = cluster->cache_stats_probe()) {
        const auto [cache_bytes, cache_entries] = probe();
        metrics->cache_bytes()->Set(cache_bytes);
        metrics->cache_entries()->Set(cache_entries);
      }
    });
    poller->Start();
  }
  setup_span.End();
  CLY_RETURN_IF_ERROR(runner->Execute(runner));

  {
    obs::Span commit_span(trace, "commit", "phase");
    CLY_RETURN_IF_ERROR(output_format->Commit(cluster, conf));
  }
  // Bytes this job actually pushed into DFS (output commit, staged-join
  // intermediates): the delta of the cluster-wide write ledger.
  report.counters.Add(
      kCounterHdfsBytesWritten,
      static_cast<int64_t>(cluster->dfs()->TotalIo().bytes_written -
                           dfs_written_before));
  report.wall_seconds = job_timer.ElapsedSeconds();
  AddMemTrackerCounters(runner->job_mem_trackers(), conf.mem_budget_bytes,
                        &report.counters);
  if (!report.profile.empty()) {
    // Stamp the whole-job wall clock onto the merged profile (the renderer
    // reports profiled-span coverage against it) and surface the headline
    // PROF_* counters.
    report.profile.wall_seconds = report.wall_seconds;
    AddQueryProfileCounters(report.profile, &report.counters);
  }

  if (poller != nullptr) {
    report.metrics_series = poller->Stop();
    report.metrics_prom = cluster->metrics_registry()->PrometheusText();
  }

  if (trace != nullptr) {
    job_span.End();
    report.spans = trace_recorder.Drain();
    AppendShuffleOverlapSpan(&report.spans);
    // Mirror job-level phase timings into the history, copied from the
    // drained spans so a history-only reader reconstructs the same critical
    // path, to the microsecond.
    if (history != nullptr) {
      for (const obs::SpanRecord& span : report.spans) {
        if (span.task != -1) continue;
        const std::string category = span.category;
        if (category != "phase" && category != "overlap") continue;
        history->RecordPhase(span.name, category, span.start_us, span.dur_us);
      }
    }
    const std::string trace_dir = conf.Get(kConfTraceDir);
    if (!trace_dir.empty()) {
      CLY_RETURN_IF_ERROR(WriteJobTrace(report, trace_dir, instance));
      CLY_LOG(Debug) << "wrote trace to " << trace_dir << "/" << conf.job_name
                     << "-" << instance << ".trace.json";
    }
  }

  // Metrics artifacts land next to the Chrome trace (kConfMetricsDir
  // defaults to the trace dir): Prometheus-text snapshot, sampled time
  // series, and the text cluster dashboard.
  const std::string metrics_dir =
      conf.Get(kConfMetricsDir, conf.Get(kConfTraceDir));
  if (metrics != nullptr && !metrics_dir.empty()) {
    const std::string base =
        StrCat(metrics_dir, "/", conf.job_name, "-", instance);
    CLY_RETURN_IF_ERROR(WriteTextFile(base + ".prom", report.metrics_prom));
    CLY_RETURN_IF_ERROR(
        WriteTextFile(base + ".metrics.json", report.metrics_series.ToJson()));
    CLY_RETURN_IF_ERROR(WriteTextFile(
        base + ".dashboard.txt",
        RenderClusterDashboard(report.metrics_series, cluster->num_nodes())));
    CLY_LOG(Debug) << "wrote metrics snapshot to " << base << ".prom";
  }

  // EXPLAIN ANALYZE artifacts for profiled runs, next to the trace/metrics
  // files (run_benches.sh exports the .json as BENCH_profile.json).
  if (!report.profile.empty() && !metrics_dir.empty()) {
    const std::string base =
        StrCat(metrics_dir, "/", conf.job_name, "-", instance);
    CLY_RETURN_IF_ERROR(WriteTextFile(
        base + ".profile.json", obs::ExplainAnalyzeJson(report.profile)));
    CLY_RETURN_IF_ERROR(WriteTextFile(
        base + ".profile.txt", obs::ExplainAnalyzeText(report.profile)));
    CLY_LOG(Debug) << "wrote query profile to " << base << ".profile.json";
  }

  JobResult result;
  result.output_rows = output_format->TakeRows();
  result.report = std::move(report);
  return result;
}

}  // namespace

Result<JobResult> RunJob(MrCluster* cluster, const JobConf& user_conf) {
  JobConf conf = user_conf;
  const int64_t instance = cluster->NextJobInstance();
  conf.SetInt("mr.job.instance", instance);

  std::unique_ptr<JobHistoryRecorder> history;
  if (conf.GetBool(kConfHistoryEnabled)) {
    history = std::make_unique<JobHistoryRecorder>(conf.job_name, instance);
  }
  const bool metrics_on = conf.GetBool(kConfMetricsEnabled);
  if (metrics_on) cluster->metrics()->jobs_running()->Add(1);
  JobReport live_report;
  Result<JobResult> result =
      ExecuteJob(cluster, conf, instance, &live_report, history.get());
  if (metrics_on) cluster->metrics()->jobs_running()->Add(-1);

  // The history log is finalized and persisted on every exit path —
  // success, validation error, task failure — like the Hadoop
  // JobHistoryServer's done-dir. On success the live report was moved into
  // the result, so read it back from there.
  if (history != nullptr) {
    const JobReport& final_report = result.ok() ? result->report : live_report;
    history->RecordJobFinished(result.ok() ? Status::OK() : result.status(),
                               final_report);
    const Status write_status =
        WriteJobHistory(cluster->local_store(0), *history);
    if (!write_status.ok()) {
      CLY_LOG(Warning) << "failed to persist job history: "
                       << write_status.ToString();
    }
    const std::string metrics_dir =
        conf.Get(kConfMetricsDir, conf.Get(kConfTraceDir));
    if (!metrics_dir.empty()) {
      const std::string path = StrCat(metrics_dir, "/", conf.job_name, "-",
                                      instance, ".history.jsonl");
      const Status dump_status = WriteTextFile(path, history->Serialize());
      if (!dump_status.ok()) {
        CLY_LOG(Warning) << "failed to dump job history: "
                         << dump_status.ToString();
      }
    }
  }
  return result;
}

}  // namespace mr
}  // namespace clydesdale
