#include "mapreduce/counters.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/mem_tracker.h"
#include "obs/query_profile.h"
#include "storage/scan_spec.h"

namespace clydesdale {
namespace mr {

std::vector<std::string> StandardCounterNames() {
  return {
      kCounterHdfsBytesReadLocal,  kCounterHdfsBytesReadRemote,
      kCounterHdfsBytesWritten,    kCounterLocalBytesRead,
      kCounterMapInputRecords,     kCounterMapOutputRecords,
      kCounterMapOutputBytes,      kCounterCombineInputRecords,
      kCounterCombineOutputRecords, kCounterReduceInputRecords,
      kCounterReduceInputGroups,   kCounterReduceOutputRecords,
      kCounterShuffleBytes,        kCounterShuffleBytesRemote,
      kCounterDataLocalMaps,       kCounterRackRemoteMaps,
      kCounterDistCacheBytes,      kCounterHdfsReadOps,
      kCounterHdfsReadMicros,      kCounterSchedPulls,
  };
}

std::vector<std::string> SituationalCounterNames() {
  return {
      kCounterStragglerAttempts,
      kCounterCifBlocksSkipped,
      kCounterCifRowsPruned,
      kCounterCifBytesEncoded,
      kCounterCifBytesRaw,
      kCounterCifBlocksPlain,
      kCounterCifBlocksRle,
      kCounterCifBlocksBitpack,
      kCounterCifBlocksFor,
      kCounterCifBlocksDict,
      kCounterCifBlocksDictRle,
      kCounterCifPrefetchHits,
      kCounterCifPrefetchMisses,
      kCounterCifPrefetchWaitNs,
      kCounterProfOperators,
      kCounterProfTasksProfiled,
      kCounterMemJobPeakBytes,
      kCounterMemNodePeakBytes,
      kCounterMemBudgetBytes,
      kCounterCacheDimHits,
      kCounterCacheDimMisses,
      kCounterCacheDimEvictions,
      kCounterCacheBytes,
  };
}

void Counters::Add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[name] += delta;
}

void Counters::Set(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[name] = value;
}

int64_t Counters::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

void Counters::MergeFrom(const Counters& other) {
  const auto snapshot = other.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : snapshot) values_[name] += value;
}

std::map<std::string, int64_t> Counters::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

std::string Counters::ToString() const {
  std::string out;
  for (const auto& [name, value] : Snapshot()) {
    out += StrCat(name, "=", value, "\n");
  }
  return out;
}

void AddCifScanCounters(const storage::ScanStats& stats, Counters* counters) {
  auto add = [&](const char* name, uint64_t v) {
    if (v > 0) counters->Add(name, static_cast<int64_t>(v));
  };
  add(kCounterCifBlocksSkipped, stats.blocks_skipped);
  add(kCounterCifRowsPruned, stats.rows_pruned);
  add(kCounterCifBytesEncoded, stats.bytes_encoded);
  add(kCounterCifBytesRaw, stats.bytes_raw);
  // Indexed by the storage/column_codec.h encoding tags.
  static constexpr const char* kBlockCounters[6] = {
      kCounterCifBlocksPlain, kCounterCifBlocksRle,  kCounterCifBlocksBitpack,
      kCounterCifBlocksFor,   kCounterCifBlocksDict, kCounterCifBlocksDictRle,
  };
  for (int e = 0; e < 6; ++e) {
    add(kBlockCounters[e], stats.blocks_by_encoding[e]);
  }
  add(kCounterCifPrefetchHits, stats.prefetch_hits);
  add(kCounterCifPrefetchMisses, stats.prefetch_misses);
  add(kCounterCifPrefetchWaitNs, stats.prefetch_wait_ns);
}

void AddQueryProfileCounters(const obs::QueryProfile& profile,
                             Counters* counters) {
  if (profile.empty()) return;
  counters->Add(kCounterProfOperators,
                static_cast<int64_t>(obs::NumProfileOperators(profile)));
  uint64_t tasks = 0;
  for (const obs::OperatorProfile& root : profile.roots) tasks += root.tasks;
  counters->Add(kCounterProfTasksProfiled, static_cast<int64_t>(tasks));
}

void AddMemTrackerCounters(
    const std::vector<std::shared_ptr<obs::MemTracker>>& job_trackers,
    uint64_t budget_bytes, Counters* counters) {
  int64_t job_peak = 0;
  int64_t node_peak = 0;
  for (const auto& tracker : job_trackers) {
    if (tracker == nullptr) continue;
    job_peak += tracker->peak();
    node_peak = std::max(node_peak, tracker->peak());
  }
  if (job_peak > 0) counters->Add(kCounterMemJobPeakBytes, job_peak);
  if (node_peak > 0) counters->Add(kCounterMemNodePeakBytes, node_peak);
  if (budget_bytes > 0) {
    counters->Set(kCounterMemBudgetBytes, static_cast<int64_t>(budget_bytes));
  }
}

void AddDimCacheCounters(int64_t hits, int64_t misses, int64_t evictions,
                         int64_t resident_bytes, Counters* counters) {
  if (hits > 0) counters->Add(kCounterCacheDimHits, hits);
  if (misses > 0) counters->Add(kCounterCacheDimMisses, misses);
  if (evictions > 0) counters->Add(kCounterCacheDimEvictions, evictions);
  // Footprint, not a flow: the latest observation wins across tasks/stages.
  if (resident_bytes >= 0) counters->Set(kCounterCacheBytes, resident_bytes);
}

obs::OperatorProfile ScanProfileNode(const std::string& name,
                                     const storage::ScanStats& stats,
                                     uint64_t wall_ns, uint64_t cpu_ns) {
  obs::OperatorProfile scan;
  scan.name = name;
  scan.kind = "scan";
  scan.rows_out = stats.rows_read;
  scan.wall_ns = wall_ns;
  scan.wall_max_ns = wall_ns;
  scan.cpu_ns = cpu_ns;
  scan.bytes_decoded = stats.bytes_encoded;
  scan.bytes_raw = stats.bytes_raw;
  scan.blocks_skipped = stats.blocks_skipped;
  scan.rows_pruned = stats.rows_pruned;
  for (int i = 0; i < 6; ++i) {
    scan.blocks_by_encoding[i] = stats.blocks_by_encoding[i];
  }
  scan.prefetch_hits = stats.prefetch_hits;
  scan.prefetch_misses = stats.prefetch_misses;
  scan.prefetch_wait_ns = stats.prefetch_wait_ns;
  // Arena bytes the late path delivered downstream: for a finished scan the
  // arenas are this operator's whole footprint, so current == peak here and
  // the profile merge (max) keeps the largest single-task value.
  scan.mem_current_bytes = stats.arena_bytes;
  scan.mem_peak_bytes = stats.arena_bytes;
  scan.tasks = 1;
  return scan;
}

}  // namespace mr
}  // namespace clydesdale
