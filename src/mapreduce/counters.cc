#include "mapreduce/counters.h"

#include "common/strings.h"
#include "storage/scan_spec.h"

namespace clydesdale {
namespace mr {

std::vector<std::string> StandardCounterNames() {
  return {
      kCounterHdfsBytesReadLocal,  kCounterHdfsBytesReadRemote,
      kCounterHdfsBytesWritten,    kCounterLocalBytesRead,
      kCounterMapInputRecords,     kCounterMapOutputRecords,
      kCounterMapOutputBytes,      kCounterCombineInputRecords,
      kCounterCombineOutputRecords, kCounterReduceInputRecords,
      kCounterReduceInputGroups,   kCounterReduceOutputRecords,
      kCounterShuffleBytes,        kCounterShuffleBytesRemote,
      kCounterDataLocalMaps,       kCounterRackRemoteMaps,
      kCounterDistCacheBytes,      kCounterHdfsReadOps,
      kCounterHdfsReadMicros,      kCounterSchedPulls,
  };
}

std::vector<std::string> SituationalCounterNames() {
  return {
      kCounterStragglerAttempts,
      kCounterCifBlocksSkipped,
      kCounterCifRowsPruned,
      kCounterCifBytesEncoded,
      kCounterCifBytesRaw,
      kCounterCifBlocksPlain,
      kCounterCifBlocksRle,
      kCounterCifBlocksBitpack,
      kCounterCifBlocksFor,
      kCounterCifBlocksDict,
      kCounterCifBlocksDictRle,
  };
}

void Counters::Add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[name] += delta;
}

void Counters::Set(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[name] = value;
}

int64_t Counters::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

void Counters::MergeFrom(const Counters& other) {
  const auto snapshot = other.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : snapshot) values_[name] += value;
}

std::map<std::string, int64_t> Counters::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

std::string Counters::ToString() const {
  std::string out;
  for (const auto& [name, value] : Snapshot()) {
    out += StrCat(name, "=", value, "\n");
  }
  return out;
}

void AddCifScanCounters(const storage::ScanStats& stats, Counters* counters) {
  auto add = [&](const char* name, uint64_t v) {
    if (v > 0) counters->Add(name, static_cast<int64_t>(v));
  };
  add(kCounterCifBlocksSkipped, stats.blocks_skipped);
  add(kCounterCifRowsPruned, stats.rows_pruned);
  add(kCounterCifBytesEncoded, stats.bytes_encoded);
  add(kCounterCifBytesRaw, stats.bytes_raw);
  // Indexed by the storage/column_codec.h encoding tags.
  static constexpr const char* kBlockCounters[6] = {
      kCounterCifBlocksPlain, kCounterCifBlocksRle,  kCounterCifBlocksBitpack,
      kCounterCifBlocksFor,   kCounterCifBlocksDict, kCounterCifBlocksDictRle,
  };
  for (int e = 0; e < 6; ++e) {
    add(kBlockCounters[e], stats.blocks_by_encoding[e]);
  }
}

}  // namespace mr
}  // namespace clydesdale
