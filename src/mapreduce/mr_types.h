#ifndef CLYDESDALE_MAPREDUCE_MR_TYPES_H_
#define CLYDESDALE_MAPREDUCE_MR_TYPES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "schema/row.h"

namespace clydesdale {
namespace mr {

class TaskContext;

/// A key/value record flowing between map and reduce.
struct KeyValue {
  Row key;
  Row value;
};

/// Sink for map or reduce output.
class OutputCollector {
 public:
  virtual ~OutputCollector() = default;
  virtual Status Collect(const Row& key, const Row& value) = 0;
};

/// User map function. One instance per map task (or per thread inside a
/// multi-threaded runner); Setup runs before the first record.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual Status Setup(TaskContext* context) {
    (void)context;
    return Status::OK();
  }
  virtual Status Map(const Row& key, const Row& value, TaskContext* context,
                     OutputCollector* out) = 0;
  virtual Status Cleanup(TaskContext* context, OutputCollector* out) {
    (void)context;
    (void)out;
    return Status::OK();
  }
};

/// User reduce function; also used as a combiner when configured so.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual Status Setup(TaskContext* context) {
    (void)context;
    return Status::OK();
  }
  virtual Status Reduce(const Row& key, const std::vector<Row>& values,
                        TaskContext* context, OutputCollector* out) = 0;
  virtual Status Cleanup(TaskContext* context, OutputCollector* out) {
    (void)context;
    (void)out;
    return Status::OK();
  }
};

/// Routes a map-output key to one of `num_partitions` reducers.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual int Partition(const Row& key, int num_partitions) = 0;
};

/// Default: hash of the whole key.
class HashPartitioner final : public Partitioner {
 public:
  int Partition(const Row& key, int num_partitions) override {
    return static_cast<int>(key.Hash() % static_cast<uint64_t>(num_partitions));
  }
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_MR_TYPES_H_
