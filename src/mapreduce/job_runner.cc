#include "mapreduce/job_runner.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "mapreduce/cluster_metrics.h"
#include "mapreduce/counters.h"
#include "mapreduce/engine.h"
#include "mapreduce/job_history.h"
#include "mapreduce/job_trace.h"
#include "mapreduce/map_runner.h"
#include "mapreduce/task_context.h"
#include "mapreduce/task_tracker.h"
#include "obs/query_profile.h"
#include "storage/byte_io.h"
#include "storage/row_codec.h"

namespace clydesdale {
namespace mr {

namespace {
/// LocalStore path of one map task's encoded run for one partition. The
/// instance prefix scopes the job's scratch so commit-time GC can delete it
/// wholesale (and concurrent jobs never collide).
std::string ShuffleRunPath(int64_t instance, int map_task, int partition) {
  return StrCat("/shuffle/", instance, "/m-", map_task, ".p", partition);
}
}  // namespace

JobRunner::JobRunner(MrCluster* cluster, const JobConf* conf, int64_t instance,
                     std::vector<std::shared_ptr<InputSplit>> splits,
                     InputFormat* input_format, OutputFormat* output_format,
                     JobReport* report, obs::TraceRecorder* trace,
                     ClusterMetrics* metrics, JobHistoryRecorder* history)
    : cluster_(cluster),
      conf_(conf),
      instance_(instance),
      splits_(std::move(splits)),
      input_format_(input_format),
      output_format_(output_format),
      report_(report),
      trace_(trace),
      metrics_(metrics),
      history_(history),
      num_reduces_(std::max(conf->num_reduce_tasks, 0)),
      map_only_(num_reduces_ == 0),
      pipelined_(conf->pipelined_shuffle),
      map_cap_per_node_(conf->single_task_per_node
                            ? 1
                            : cluster->options().map_slots_per_node),
      task_threads_(conf->single_task_per_node
                        ? cluster->options().map_slots_per_node
                        : 1),
      shuffle_(std::max(num_reduces_, 1), metrics),
      direct_out_(output_format),
      straggler_([conf] {
        StragglerPolicy policy;
        policy.threshold =
            conf->GetDouble(kConfStragglerThreshold, policy.threshold);
        policy.min_completed = static_cast<int>(
            conf->GetInt(kConfStragglerMinCompleted, policy.min_completed));
        return policy;
      }()),
      policy_(splits_, cluster->num_nodes()),
      running_maps_(static_cast<size_t>(cluster->num_nodes()), 0),
      maps_unfinished_(static_cast<int>(splits_.size())),
      reduces_unfinished_(map_only_ ? 0 : num_reduces_) {
  map_attempts_.reserve(splits_.size());
  for (size_t i = 0; i < splits_.size(); ++i) {
    map_attempts_.push_back(std::make_unique<TaskAttempt>(
        static_cast<int>(i), /*attempt=*/0, /*is_map=*/true));
  }
  reduce_attempts_.reserve(static_cast<size_t>(num_reduces_));
  for (int r = 0; r < num_reduces_; ++r) {
    reduce_attempts_.push_back(
        std::make_unique<TaskAttempt>(r, /*attempt=*/0, /*is_map=*/false));
  }
  // The job's memory-tracker layer: one tracker per node, parented under
  // the cluster's node trackers, carrying the job's budget as its limit.
  // Everything a task charges (dim tables, scan arenas, shuffle runs)
  // propagates node -> cluster through these.
  if (conf->GetBool(kConfMemTrackingEnabled, true)) {
    job_mem_trackers_.reserve(static_cast<size_t>(cluster->num_nodes()));
    for (int n = 0; n < cluster->num_nodes(); ++n) {
      job_mem_trackers_.push_back(obs::MemTracker::Create(
          obs::JobTrackerName(instance, n), cluster->node_mem_tracker(n),
          static_cast<int64_t>(conf->mem_budget_bytes)));
    }
    shuffle_.set_mem_trackers(job_mem_trackers_);
  }
  // Queue-depth gauges go up by the full attempt count here and come back
  // down one claim (or one abort-kill) at a time — net zero by job end.
  if (metrics_ != nullptr) {
    metrics_->queued_maps()->Add(static_cast<int64_t>(map_attempts_.size()));
    metrics_->queued_reduces()->Add(
        static_cast<int64_t>(reduce_attempts_.size()));
  }
  if (maps_unfinished_ == 0) shuffle_.CloseProducers();
}

std::vector<bool> JobRunner::SaturationLocked() const {
  std::vector<bool> saturated(running_maps_.size());
  for (size_t n = 0; n < running_maps_.size(); ++n) {
    saturated[n] = running_maps_[n] >= map_cap_per_node_;
  }
  return saturated;
}

bool JobRunner::HasRunnableWork(hdfs::NodeId node, bool reduce_slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (aborted_) return false;
  if (reduce_slot) {
    if (map_only_) return false;
    if (!pipelined_ && maps_unfinished_ > 0) return false;
    for (const auto& attempt : reduce_attempts_) {
      if (attempt->state() == AttemptState::kQueued) return true;
    }
    return false;
  }
  if (running_maps_[static_cast<size_t>(node)] >= map_cap_per_node_) {
    return false;
  }
  return policy_.HasEligible(node, SaturationLocked());
}

TaskAttempt* JobRunner::ClaimLocked(hdfs::NodeId node, bool reduce_slot) {
  if (aborted_) return nullptr;
  if (reduce_slot) {
    if (map_only_ || (!pipelined_ && maps_unfinished_ > 0)) return nullptr;
    for (auto& attempt : reduce_attempts_) {
      if (attempt->state() != AttemptState::kQueued) continue;
      // Late-binding reduce placement: the task runs wherever a reduce slot
      // asked for it first (reduce input comes over the simulated network
      // either way; shuffle locality is accounted per fetched run).
      attempt->node = node;
      attempt->start_us = clock_.ElapsedMicros();
      (void)attempt->Transition(AttemptState::kRunning);
      report_->counters.Add(kCounterSchedPulls, 1);
      if (metrics_ != nullptr) {
        metrics_->queued_reduces()->Add(-1);
        metrics_->running_reduces(node)->Add(1);
      }
      if (history_ != nullptr) {
        history_->RecordAttemptRunning(/*is_map=*/false,
                                       attempt->task_index(),
                                       attempt->attempt(), node);
      }
      return attempt.get();
    }
    return nullptr;
  }
  if (running_maps_[static_cast<size_t>(node)] >= map_cap_per_node_) {
    return nullptr;
  }
  const MapSchedulingPolicy::Choice choice =
      policy_.Pull(node, SaturationLocked());
  if (choice.task_index < 0) return nullptr;
  TaskAttempt* attempt =
      map_attempts_[static_cast<size_t>(choice.task_index)].get();
  attempt->node = node;
  attempt->data_local = choice.data_local;
  attempt->split = splits_[static_cast<size_t>(choice.task_index)];
  attempt->start_us = clock_.ElapsedMicros();
  (void)attempt->Transition(AttemptState::kRunning);
  ++running_maps_[static_cast<size_t>(node)];
  report_->counters.Add(kCounterSchedPulls, 1);
  // Locality is recorded from the actual pull-time decision, not a plan.
  report_->counters.Add(
      choice.data_local ? kCounterDataLocalMaps : kCounterRackRemoteMaps, 1);
  if (metrics_ != nullptr) {
    metrics_->queued_maps()->Add(-1);
    metrics_->running_maps(node)->Add(1);
  }
  if (history_ != nullptr) {
    history_->RecordAttemptRunning(/*is_map=*/true, attempt->task_index(),
                                   attempt->attempt(), node);
  }
  return attempt;
}

bool JobRunner::TryRunWork(hdfs::NodeId node, bool reduce_slot) {
  TaskAttempt* attempt = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempt = ClaimLocked(node, reduce_slot);
  }
  if (attempt == nullptr) return false;
  // The claim changed slot occupancy, which can make reserved splits
  // stealable elsewhere; wake outside our lock (lock order: tracker first).
  cluster_->WakeAllTrackers();
  Status status = attempt->is_map() ? RunMapAttempt(attempt)
                                    : RunReduceAttempt(attempt);
  FinishAttempt(attempt, std::move(status));
  return true;
}

bool JobRunner::aborted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aborted_;
}

void JobRunner::FinishAttempt(TaskAttempt* attempt, Status status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempt->status = status;
    (void)attempt->Transition(status.ok() ? AttemptState::kSucceeded
                                          : AttemptState::kFailed);
    const int64_t elapsed_us =
        attempt->start_us >= 0 ? clock_.ElapsedMicros() - attempt->start_us
                               : 0;
    straggler_.RecordCompletion(attempt->is_map(), elapsed_us);
    if (metrics_ != nullptr) {
      (attempt->is_map() ? metrics_->running_maps(attempt->node)
                         : metrics_->running_reduces(attempt->node))
          ->Add(-1);
      metrics_->attempts_finished(attempt->is_map(),
                                  status.ok() ? "succeeded" : "failed")
          ->Inc();
      metrics_->attempt_duration(attempt->is_map())->Record(elapsed_us);
      // A flagged straggler leaving keeps the live gauge net-zero.
      if (attempt->straggler_flagged) metrics_->stragglers_running()->Add(-1);
    }
    if (history_ != nullptr) {
      history_->RecordAttemptFinished(attempt->report,
                                      status.ok() ? "succeeded" : "failed",
                                      status.ok() ? "" : status.ToString());
    }
    if (attempt->is_map()) {
      --running_maps_[static_cast<size_t>(attempt->node)];
      --maps_unfinished_;
      if (maps_unfinished_ == 0) shuffle_.CloseProducers();
    } else {
      --reduces_unfinished_;
    }
    if (!status.ok()) {
      if (first_failure_.ok()) {
        first_failure_ = status;
        first_failure_context_ =
            StrCat(conf_->job_name,
                   attempt->is_map() ? " map task " : " reduce task ",
                   attempt->task_index());
      }
      if (!aborted_) {
        // Kill everything still queued; running attempts finish on their
        // own (pipelined reducers bail at their next abort check, or drain
        // once CloseProducers unblocks their fetch wait).
        aborted_ = true;
        const Status killed = Status::Internal("attempt killed: job aborted");
        auto kill_queued = [&](std::vector<std::unique_ptr<TaskAttempt>>&
                                   attempts,
                               bool is_map, int* unfinished) {
          for (auto& a : attempts) {
            if (a->state() != AttemptState::kQueued) continue;
            a->status = killed;
            (void)a->Transition(AttemptState::kFailed);
            --(*unfinished);
            if (metrics_ != nullptr) {
              (is_map ? metrics_->queued_maps() : metrics_->queued_reduces())
                  ->Add(-1);
              metrics_->attempts_finished(is_map, "killed")->Inc();
            }
            if (history_ != nullptr) {
              TaskReport& tr = a->report;
              tr.index = a->task_index();
              tr.attempt = a->attempt();
              tr.is_map = is_map;
              tr.node = a->node;
              history_->RecordAttemptFinished(tr, "killed", killed.ToString());
            }
          }
        };
        kill_queued(map_attempts_, /*is_map=*/true, &maps_unfinished_);
        kill_queued(reduce_attempts_, /*is_map=*/false, &reduces_unfinished_);
        shuffle_.CloseProducers();
      }
    }
  }
  cluster_->WakeAllTrackers();
  done_cv_.notify_all();
}

void JobRunner::PollLiveMetrics() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_us = clock_.ElapsedMicros();
  auto sweep = [&](std::vector<std::unique_ptr<TaskAttempt>>& attempts) {
    for (auto& a : attempts) {
      if (a->state() != AttemptState::kRunning || a->straggler_flagged ||
          a->start_us < 0) {
        continue;
      }
      const int64_t elapsed_us = now_us - a->start_us;
      if (!straggler_.IsStraggler(a->is_map(), elapsed_us)) continue;
      a->straggler_flagged = true;
      report_->counters.Add(kCounterStragglerAttempts, 1);
      const int64_t median_us = straggler_.RunningMedianMicros(a->is_map());
      if (metrics_ != nullptr) {
        metrics_->stragglers_running()->Add(1);
        metrics_->stragglers_total()->Inc();
      }
      if (history_ != nullptr) {
        history_->RecordStraggler(StragglerFlag{a->is_map(), a->task_index(),
                                                a->attempt(), a->node,
                                                elapsed_us, median_us});
      }
      CLY_LOG(Debug) << "straggler flagged: " << a->Label() << "@node"
                     << a->node << " elapsed " << elapsed_us
                     << "us vs median " << median_us << "us";
    }
  };
  sweep(map_attempts_);
  sweep(reduce_attempts_);
}

Status JobRunner::RunMapAttempt(TaskAttempt* attempt) {
  Stopwatch timer;
  const bool profiled = conf_->GetBool(kConfProfileEnabled);
  const int64_t prof_start_us = profiled ? clock_.ElapsedMicros() : 0;
  const int64_t prof_cpu0 = profiled ? obs::ThreadCpuNanos() : 0;
  const int index = attempt->task_index();
  const hdfs::NodeId node = attempt->node;

  std::shared_ptr<SharedJvmState> shared =
      conf_->jvm_reuse ? cluster_->SharedStateFor(instance_, node)
                       : std::make_shared<SharedJvmState>();
  TaskContext context(conf_, cluster_, index, node, task_threads_, shared,
                      &report_->counters, trace_, &report_->histograms,
                      attempt->attempt());
  std::shared_ptr<obs::MemTracker> attempt_tracker;
  if (!job_mem_trackers_.empty()) {
    attempt_tracker = obs::MemTracker::Create(
        StrCat("m-", index, ".", attempt->attempt()),
        job_mem_trackers_[static_cast<size_t>(node)]);
    context.set_mem_trackers(attempt_tracker,
                             job_mem_trackers_[static_cast<size_t>(node)]);
  }
  ScopedLogContext task_log_context(context.DebugLabel(/*is_map=*/true));
  obs::Span task_span(trace_, "map-task", "task", index, node);

  std::unique_ptr<MapRunner> runner =
      conf_->map_runner_factory ? conf_->map_runner_factory()
                                : std::make_unique<DefaultMapRunner>();

  Status status = Status::OK();
  uint64_t out_records = 0;
  uint64_t out_bytes = 0;
  if (map_only_) {
    const uint64_t before_r = direct_out_.records();
    const uint64_t before_b = direct_out_.bytes();
    status = runner->Run(*attempt->split, input_format_, &context, &direct_out_);
    out_records = direct_out_.records() - before_r;
    out_bytes = direct_out_.bytes() - before_b;
  } else {
    std::unique_ptr<Partitioner> partitioner =
        conf_->partitioner_factory ? conf_->partitioner_factory()
                                   : std::make_unique<HashPartitioner>();
    // Sharded per-thread buffers: no lock on the per-record collect path
    // even when the map runner collects from many threads at once.
    ShardedCollector buffer(partitioner.get(), num_reduces_);
    status = runner->Run(*attempt->split, input_format_, &context, &buffer);
    if (status.ok()) {
      std::unique_ptr<Reducer> combiner =
          conf_->combiner_factory ? conf_->combiner_factory() : nullptr;
      out_records = buffer.records();
      auto finished = buffer.Finish(combiner.get(), &context);
      if (!finished.ok()) {
        status = finished.status();
      } else {
        // Stage every partition's run (encoded spill on this node's disk)
        // before publishing any, so a failure can't leak half a task into
        // the shuffle.
        std::vector<std::pair<int, ShuffleRun>> pending;
        for (int p = 0; p < num_reduces_ && status.ok(); ++p) {
          auto& partition = (*finished)[static_cast<size_t>(p)];
          if (partition.empty()) continue;
          ShuffleRun run;
          run.map_task = index;
          run.map_node = node;
          storage::ByteWriter encoded;
          for (const KeyValue& kv : partition) {
            run.encoded_bytes += EncodedKeyValueBytes(kv.key, kv.value);
            storage::EncodeRow(kv.key, &encoded);
            storage::EncodeRow(kv.value, &encoded);
          }
          out_bytes += run.encoded_bytes;
          run.records = std::move(partition);
          run.local_path = ShuffleRunPath(instance_, index, p);
          status = cluster_->local_store(node)->Write(run.local_path,
                                                      encoded.Release());
          if (status.ok()) pending.emplace_back(p, std::move(run));
        }
        if (status.ok()) {
          // Publish immediately: the partition's reducer may fetch these
          // runs before this task's siblings have even started.
          for (auto& [p, run] : pending) shuffle_.PublishRun(p, std::move(run));
        }
      }
    }
  }

  TaskReport& tr = attempt->report;
  tr.index = index;
  tr.attempt = attempt->attempt();
  tr.is_map = true;
  tr.node = node;
  tr.data_local = attempt->data_local;
  tr.num_constituents =
      static_cast<int>(attempt->split->Constituents().size());
  tr.hdfs_local_bytes = context.io_stats()->local_bytes_read;
  tr.hdfs_remote_bytes = context.io_stats()->remote_bytes_read;
  tr.local_disk_bytes = context.local_disk_bytes();
  tr.output_records = out_records;
  tr.output_bytes = out_bytes;
  task_span.End();
  tr.wall_seconds = timer.ElapsedSeconds();
  report_->histograms.Get(kHistMapTaskMicros)->Record(timer.ElapsedMicros());
  if (context.io_stats()->read_ops > 0) {
    report_->histograms.Get(kHistHdfsReadMicros)
        ->Record(static_cast<int64_t>(context.io_stats()->read_micros()));
  }

  report_->counters.Add(kCounterHdfsReadOps,
                        static_cast<int64_t>(context.io_stats()->read_ops));
  report_->counters.Add(
      kCounterHdfsReadMicros,
      static_cast<int64_t>(context.io_stats()->read_micros()));
  report_->counters.Add(kCounterHdfsBytesReadLocal,
                        static_cast<int64_t>(tr.hdfs_local_bytes));
  report_->counters.Add(kCounterHdfsBytesReadRemote,
                        static_cast<int64_t>(tr.hdfs_remote_bytes));
  report_->counters.Add(kCounterLocalBytesRead,
                        static_cast<int64_t>(tr.local_disk_bytes));
  report_->counters.Add(kCounterMapOutputRecords,
                        static_cast<int64_t>(out_records));
  report_->counters.Add(kCounterMapOutputBytes,
                        static_cast<int64_t>(out_bytes));

  // Failed attempts are dropped from the profile: their retry contributes
  // instead, keeping merged counters loss-free per *completed* task.
  if (profiled && status.ok()) {
    obs::OperatorProfile root;
    root.name = "map";
    root.kind = "task";
    root.rows_out = out_records;
    const uint64_t attempt_ns = static_cast<uint64_t>(timer.ElapsedNanos());
    root.wall_ns = attempt_ns;
    root.wall_max_ns = attempt_ns;
    root.cpu_ns = static_cast<uint64_t>(obs::ThreadCpuNanos() - prof_cpu0);
    root.tasks = 1;
    if (attempt_tracker != nullptr) {
      root.mem_current_bytes =
          static_cast<uint64_t>(std::max<int64_t>(0, attempt_tracker->consumed()));
      root.mem_peak_bytes =
          static_cast<uint64_t>(std::max<int64_t>(0, attempt_tracker->peak()));
    }
    root.children = context.TakeProfileOperators();
    std::lock_guard<std::mutex> lock(mu_);
    report_->profile.MergeAttempt(root, prof_start_us, clock_.ElapsedMicros());
  }
  return status;
}

Status JobRunner::RunReduceAttempt(TaskAttempt* attempt) {
  Stopwatch timer;
  const bool profiled = conf_->GetBool(kConfProfileEnabled);
  const int64_t prof_start_us = profiled ? clock_.ElapsedMicros() : 0;
  const int64_t prof_cpu0 = profiled ? obs::ThreadCpuNanos() : 0;
  const int r = attempt->task_index();
  const hdfs::NodeId node = attempt->node;
  TaskContext context(conf_, cluster_, r, node, /*allowed_threads=*/1,
                      std::make_shared<SharedJvmState>(), &report_->counters,
                      trace_, &report_->histograms, attempt->attempt());
  std::shared_ptr<obs::MemTracker> attempt_tracker;
  if (!job_mem_trackers_.empty()) {
    attempt_tracker = obs::MemTracker::Create(
        StrCat("r-", r, ".", attempt->attempt()),
        job_mem_trackers_[static_cast<size_t>(node)]);
    context.set_mem_trackers(attempt_tracker,
                             job_mem_trackers_[static_cast<size_t>(node)]);
  }
  ScopedLogContext task_log_context(context.DebugLabel(/*is_map=*/false));
  obs::Span task_span(trace_, "reduce-task", "task", r, node);

  TaskReport& tr = attempt->report;
  tr.index = r;
  tr.attempt = attempt->attempt();
  tr.is_map = false;
  tr.node = node;

  obs::Histogram* fetch_bytes = report_->histograms.Get(kHistShuffleFetchBytes);
  ShuffleMerger merger;
  uint64_t shuffle_batches = 0;
  uint64_t shuffle_wall_ns = 0;
  // Fetched runs live in the merger until the reduce ends; charge them to
  // this attempt (released wholesale when the consumer goes out of scope).
  obs::ScopedMemConsumer fetch_mem(attempt_tracker);

  // Simulated HTTP fetch of one batch of runs: read each encoded run file
  // from its map node's disk (charging that node's read ledger) and fold
  // the records into the merge.
  auto fetch_batch = [&](std::vector<ShuffleRun> batch) -> Status {
    for (const ShuffleRun& run : batch) {
      tr.shuffle_bytes_total += run.encoded_bytes;
      fetch_mem.Add(static_cast<int64_t>(run.encoded_bytes));
      if (run.map_node != node) tr.shuffle_bytes_remote += run.encoded_bytes;
      fetch_bytes->Record(static_cast<int64_t>(run.encoded_bytes));
      if (!run.local_path.empty() && run.map_node != hdfs::kNoNode) {
        CLY_RETURN_IF_ERROR(
            cluster_->local_store(run.map_node)->Read(run.local_path).status());
      }
    }
    merger.Add(std::move(batch));
    return Status::OK();
  };

  if (pipelined_) {
    // Fetch-as-published: drain run batches while the map phase is still
    // producing them. Merge order stays identical to the barrier path (see
    // ShuffleMerger), so the interleaving never shows in the output.
    while (true) {
      std::vector<ShuffleRun> batch;
      if (!shuffle_.AwaitNewRuns(r, &batch)) break;
      if (aborted()) return Status::Internal("job aborted");
      const size_t batch_runs = batch.size();
      Stopwatch fetch_timer;
      obs::Span fetch_span(trace_, "shuffle-fetch", "stage", r, node);
      CLY_RETURN_IF_ERROR(fetch_batch(std::move(batch)));
      fetch_span.End();
      // Tagged by the ambient ScopedLogContext above: "[job/r-N@nodeM] ...".
      CLY_LOG(Debug) << "fetched " << batch_runs << " shuffle run(s), "
                     << merger.input_records() << " records merged";
      report_->histograms.Get(kHistShuffleFetchMicros)
          ->Record(fetch_timer.ElapsedMicros());
      ++shuffle_batches;
      shuffle_wall_ns += static_cast<uint64_t>(fetch_timer.ElapsedNanos());
    }
  } else {
    Stopwatch fetch_timer;
    obs::Span fetch_span(trace_, "shuffle-fetch", "stage", r, node);
    CLY_RETURN_IF_ERROR(fetch_batch(shuffle_.TakePartition(r)));
    fetch_span.End();
    report_->histograms.Get(kHistShuffleFetchMicros)
        ->Record(fetch_timer.ElapsedMicros());
    ++shuffle_batches;
    shuffle_wall_ns += static_cast<uint64_t>(fetch_timer.ElapsedNanos());
  }
  if (aborted()) return Status::Internal("job aborted");

  std::unique_ptr<Reducer> reducer = conf_->reducer_factory();
  OutputFormatCollector out(output_format_);
  tr.input_records = merger.input_records();
  uint64_t in_groups = 0;
  Status status = ReduceMergedRecords(merger.Take(), reducer.get(), &context,
                                      &out, &in_groups);

  tr.output_records = out.records();
  tr.output_bytes = out.bytes();
  tr.hdfs_local_bytes = context.io_stats()->local_bytes_read;
  tr.hdfs_remote_bytes = context.io_stats()->remote_bytes_read;
  task_span.End();
  tr.wall_seconds = timer.ElapsedSeconds();
  report_->histograms.Get(kHistReduceTaskMicros)->Record(timer.ElapsedMicros());

  report_->counters.Add(kCounterReduceInputRecords,
                        static_cast<int64_t>(tr.input_records));
  report_->counters.Add(kCounterReduceInputGroups,
                        static_cast<int64_t>(in_groups));
  report_->counters.Add(kCounterReduceOutputRecords,
                        static_cast<int64_t>(out.records()));
  report_->counters.Add(kCounterShuffleBytes,
                        static_cast<int64_t>(tr.shuffle_bytes_total));
  report_->counters.Add(kCounterShuffleBytesRemote,
                        static_cast<int64_t>(tr.shuffle_bytes_remote));
  report_->counters.Add(kCounterHdfsReadOps,
                        static_cast<int64_t>(context.io_stats()->read_ops));
  report_->counters.Add(
      kCounterHdfsReadMicros,
      static_cast<int64_t>(context.io_stats()->read_micros()));

  if (profiled && status.ok()) {
    obs::OperatorProfile root;
    root.name = "reduce";
    root.kind = "task";
    root.rows_in = tr.input_records;
    root.rows_out = out.records();
    const uint64_t attempt_ns = static_cast<uint64_t>(timer.ElapsedNanos());
    root.wall_ns = attempt_ns;
    root.wall_max_ns = attempt_ns;
    root.cpu_ns = static_cast<uint64_t>(obs::ThreadCpuNanos() - prof_cpu0);
    root.tasks = 1;
    if (attempt_tracker != nullptr) {
      root.mem_current_bytes =
          static_cast<uint64_t>(std::max<int64_t>(0, attempt_tracker->consumed()));
      root.mem_peak_bytes =
          static_cast<uint64_t>(std::max<int64_t>(0, attempt_tracker->peak()));
    }
    obs::OperatorProfile shuffle;
    shuffle.name = "shuffle";
    shuffle.kind = "shuffle";
    shuffle.rows_in = tr.input_records;
    shuffle.rows_out = tr.input_records;
    shuffle.batches = shuffle_batches;
    shuffle.wall_ns = shuffle_wall_ns;
    shuffle.wall_max_ns = shuffle_wall_ns;
    // All fetched runs were resident in the merger at once.
    shuffle.mem_current_bytes = tr.shuffle_bytes_total;
    shuffle.mem_peak_bytes = tr.shuffle_bytes_total;
    shuffle.tasks = 1;
    root.children.push_back(std::move(shuffle));
    std::vector<obs::OperatorProfile> reducer_ops =
        context.TakeProfileOperators();
    for (obs::OperatorProfile& op : reducer_ops) {
      root.children.push_back(std::move(op));
    }
    std::lock_guard<std::mutex> lock(mu_);
    report_->profile.MergeAttempt(root, prof_start_us, clock_.ElapsedMicros());
  }
  return status;
}

Status JobRunner::Execute(const std::shared_ptr<JobRunner>& self) {
  // Tracker detach is inside the last phase span: it contends with every
  // worker the completion wake-up just roused, and an untimed multi-ms
  // lock handoff there would punch a hole in the phase accounting (the
  // integration suite asserts phase spans tile the job's wall clock).
  {
    // The map phase span covers submission to last map completion; with the
    // pipelined shuffle, reduce attempts are already fetching inside this
    // window (the derived shuffle-overlap span measures by how much).
    obs::Span map_phase_span(trace_, "map-phase", "phase");
    for (int n = 0; n < cluster_->num_nodes(); ++n) {
      cluster_->tracker(n)->Attach(self);
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return maps_unfinished_ == 0; });
    }
    // History checkpoint at the map barrier: the counters a JobTracker UI
    // would show when the map progress bar hits 100%.
    if (history_ != nullptr) {
      history_->RecordCountersSnapshot("map-end", report_->counters);
    }
    if (map_only_) {
      for (int n = 0; n < cluster_->num_nodes(); ++n) {
        cluster_->tracker(n)->Detach(this);
      }
    }
  }
  if (!map_only_) {
    obs::Span reduce_phase_span(trace_, "reduce-phase", "phase");
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return reduces_unfinished_ == 0; });
    }
    for (int n = 0; n < cluster_->num_nodes(); ++n) {
      cluster_->tracker(n)->Detach(this);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!first_failure_.ok()) {
    return first_failure_.WithContext(first_failure_context_);
  }
  for (auto& attempt : map_attempts_) {
    report_->map_tasks.push_back(std::move(attempt->report));
  }
  for (auto& attempt : reduce_attempts_) {
    report_->reduce_tasks.push_back(std::move(attempt->report));
  }
  return Status::OK();
}

}  // namespace mr
}  // namespace clydesdale
