#ifndef CLYDESDALE_MAPREDUCE_OUTPUT_FORMAT_H_
#define CLYDESDALE_MAPREDUCE_OUTPUT_FORMAT_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapreduce/job_conf.h"
#include "mapreduce/mr_types.h"

namespace clydesdale {
namespace mr {

class MrCluster;

/// The Hadoop OutputFormat extensibility point: turns final key/value pairs
/// into an on-disk (or in-memory) artifact. Writers here are created once
/// per job and must be thread-safe, because reduce tasks run concurrently.
class OutputFormat {
 public:
  virtual ~OutputFormat() = default;

  /// Called once before tasks emit; may create DFS files.
  virtual Status Open(MrCluster* cluster, const JobConf& conf) = 0;

  /// Thread-safe emit of one final record.
  virtual Status Write(const Row& key, const Row& value) = 0;

  /// Called once after all tasks finish; finalizes the artifact.
  virtual Status Commit(MrCluster* cluster, const JobConf& conf) = 0;

  /// Collected result rows, for formats that keep them in memory (empty for
  /// on-disk formats). Valid after Commit; moves the rows out.
  virtual std::vector<Row> TakeRows() { return {}; }
};

// --- Configuration keys ------------------------------------------------------

/// For TableOutputFormat: DFS directory of the result table.
inline constexpr const char kConfOutputTable[] = "output.table";
/// For TableOutputFormat: comma-separated "name:type" column declarations of
/// the emitted key followed by value fields, e.g. "d_year:int32,rev:int64".
inline constexpr const char kConfOutputColumns[] = "output.columns";
/// For TableOutputFormat: storage format of the result (default binrow).
inline constexpr const char kConfOutputFormat[] = "output.format";

/// Collects `key ++ value` rows in memory; the job result for queries whose
/// final answer returns to the client.
class MemoryOutputFormat final : public OutputFormat {
 public:
  Status Open(MrCluster* cluster, const JobConf& conf) override;
  Status Write(const Row& key, const Row& value) override;
  Status Commit(MrCluster* cluster, const JobConf& conf) override;
  std::vector<Row> TakeRows() override;

 private:
  std::mutex mu_;
  std::vector<Row> rows_;
};

/// Writes `key ++ value` rows as a stored table (Hive's inter-job
/// intermediate results; paper §6.3 notes these round-trips through HDFS).
class TableOutputFormat final : public OutputFormat {
 public:
  Status Open(MrCluster* cluster, const JobConf& conf) override;
  Status Write(const Row& key, const Row& value) override;
  Status Commit(MrCluster* cluster, const JobConf& conf) override;

 private:
  std::mutex mu_;
  std::vector<Row> rows_;  // buffered; written sequentially at Commit
};

/// Parses a kConfOutputColumns declaration into a schema.
Result<SchemaPtr> ParseColumnsDecl(const std::string& decl);

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_OUTPUT_FORMAT_H_
