#include "mapreduce/job_conf.h"

#include "common/strings.h"

namespace clydesdale {
namespace mr {

void JobConf::SetInt(const std::string& key, int64_t value) {
  conf_[key] = StrCat(value);
}

void JobConf::SetBool(const std::string& key, bool value) {
  conf_[key] = value ? "true" : "false";
}

void JobConf::SetDouble(const std::string& key, double value) {
  conf_[key] = StrCat(value);
}

std::string JobConf::Get(const std::string& key, const std::string& def) const {
  auto it = conf_.find(key);
  return it == conf_.end() ? def : it->second;
}

int64_t JobConf::GetInt(const std::string& key, int64_t def) const {
  auto it = conf_.find(key);
  if (it == conf_.end() || it->second.empty()) return def;
  return std::stoll(it->second);
}

bool JobConf::GetBool(const std::string& key, bool def) const {
  auto it = conf_.find(key);
  if (it == conf_.end()) return def;
  return it->second == "true" || it->second == "1";
}

double JobConf::GetDouble(const std::string& key, double def) const {
  auto it = conf_.find(key);
  if (it == conf_.end() || it->second.empty()) return def;
  return std::stod(it->second);
}

std::vector<std::string> JobConf::GetList(const std::string& key) const {
  const std::string value = Get(key);
  if (value.empty()) return {};
  return StrSplit(value, ',');
}

void JobConf::SetList(const std::string& key,
                      const std::vector<std::string>& items) {
  conf_[key] = StrJoin(items, ",");
}

}  // namespace mr
}  // namespace clydesdale
