#ifndef CLYDESDALE_MAPREDUCE_STRAGGLER_H_
#define CLYDESDALE_MAPREDUCE_STRAGGLER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace clydesdale {
namespace mr {

/// Tuning for the online straggler rule. An attempt is a straggler when its
/// elapsed time exceeds `threshold` times the running median of completed
/// same-phase attempts, once at least `min_completed` have finished. The
/// `min_elapsed_us` floor keeps sub-10ms jitter from tripping the rule on
/// tiny tasks.
struct StragglerPolicy {
  double threshold = 2.0;
  int min_completed = 3;
  int64_t min_elapsed_us = 10000;
};

/// One flagged attempt, as surfaced to the history log.
struct StragglerFlag {
  bool is_map = false;
  int task = -1;
  int attempt = -1;
  int node = -1;
  int64_t elapsed_us = 0;
  int64_t median_us = 0;
};

/// Online straggler detection over completed-attempt durations, per phase
/// (map vs reduce) — the observation half of Hadoop's speculative execution:
/// we flag, a later PR may re-launch. Thread-safe; the poller probe calls
/// IsStraggler against running attempts while trackers record completions.
class StragglerDetector {
 public:
  explicit StragglerDetector(StragglerPolicy policy = {});

  void RecordCompletion(bool is_map, int64_t duration_us);

  /// Median completed duration for the phase; -1 while fewer than
  /// `min_completed` attempts have finished.
  int64_t RunningMedianMicros(bool is_map) const;

  /// Pure check: is an attempt with this elapsed time a straggler right now?
  bool IsStraggler(bool is_map, int64_t elapsed_us) const;

  const StragglerPolicy& policy() const { return policy_; }

 private:
  const StragglerPolicy policy_;

  mutable std::mutex mu_;
  // Kept sorted (insertion into position) so the median is O(1) to read.
  std::vector<int64_t> map_durations_;
  std::vector<int64_t> reduce_durations_;
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_STRAGGLER_H_
