#include "mapreduce/scheduler.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace clydesdale {
namespace mr {

std::vector<ScheduledTask> ScheduleMapTasks(
    const std::vector<std::shared_ptr<InputSplit>>& splits, int num_nodes) {
  std::vector<uint64_t> load(static_cast<size_t>(num_nodes), 0);

  // Largest-first assignment evens out per-node bytes.
  std::vector<size_t> order(splits.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return splits[a]->Length() > splits[b]->Length();
  });

  std::vector<ScheduledTask> tasks(splits.size());
  for (size_t pos : order) {
    const auto& split = splits[pos];
    hdfs::NodeId best = hdfs::kNoNode;
    bool local = false;
    for (hdfs::NodeId n : split->Locations()) {
      if (n < 0 || n >= num_nodes) continue;
      if (best == hdfs::kNoNode ||
          load[static_cast<size_t>(n)] < load[static_cast<size_t>(best)]) {
        best = n;
        local = true;
      }
    }
    if (best == hdfs::kNoNode) {
      // No local candidate: least-loaded node overall (remote read).
      best = 0;
      for (int n = 1; n < num_nodes; ++n) {
        if (load[static_cast<size_t>(n)] < load[static_cast<size_t>(best)]) {
          best = n;
        }
      }
      local = false;
    }
    load[static_cast<size_t>(best)] += split->Length();
    tasks[pos] = ScheduledTask{static_cast<int>(pos), split, best, local};
  }

  int data_local = 0;
  for (const ScheduledTask& t : tasks) data_local += t.data_local ? 1 : 0;
  const auto [min_load, max_load] =
      std::minmax_element(load.begin(), load.end());
  CLY_LOG(Debug) << "scheduled " << tasks.size() << " map tasks ("
                 << data_local << " data-local) across " << num_nodes
                 << " nodes, per-node bytes " << *min_load << ".." << *max_load;
  return tasks;
}

std::vector<hdfs::NodeId> ScheduleReduceTasks(int num_reduce_tasks,
                                              int num_nodes) {
  std::vector<hdfs::NodeId> nodes(static_cast<size_t>(num_reduce_tasks));
  for (int r = 0; r < num_reduce_tasks; ++r) {
    nodes[static_cast<size_t>(r)] = r % num_nodes;
  }
  return nodes;
}

}  // namespace mr
}  // namespace clydesdale
