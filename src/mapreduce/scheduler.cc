#include "mapreduce/scheduler.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace clydesdale {
namespace mr {

MapSchedulingPolicy::MapSchedulingPolicy(
    const std::vector<std::shared_ptr<InputSplit>>& splits, int num_nodes)
    : num_nodes_(num_nodes),
      claimed_(splits.size(), 0),
      local_(static_cast<size_t>(num_nodes)),
      assigned_bytes_(static_cast<size_t>(num_nodes), 0),
      remaining_(static_cast<int>(splits.size())) {
  lengths_.reserve(splits.size());
  locations_.reserve(splits.size());
  for (const auto& split : splits) {
    lengths_.push_back(split->Length());
    std::vector<hdfs::NodeId> holders;
    for (hdfs::NodeId n : split->Locations()) {
      if (n >= 0 && n < num_nodes_) holders.push_back(n);
    }
    locations_.push_back(std::move(holders));
  }

  order_.resize(splits.size());
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(), [this](int a, int b) {
    return lengths_[static_cast<size_t>(a)] > lengths_[static_cast<size_t>(b)];
  });
  for (int idx : order_) {
    for (hdfs::NodeId n : locations_[static_cast<size_t>(idx)]) {
      local_[static_cast<size_t>(n)].push_back(idx);
    }
  }
}

MapSchedulingPolicy::Choice MapSchedulingPolicy::FindEligible(
    hdfs::NodeId node, const std::vector<bool>& node_saturated) const {
  // Largest unclaimed node-local split first.
  for (int idx : local_[static_cast<size_t>(node)]) {
    if (!claimed_[static_cast<size_t>(idx)]) return Choice{idx, true};
  }
  // Remote fallback: largest remaining anywhere, unless the split is
  // reserved for a replica holder that still has a free slot.
  for (int idx : order_) {
    if (claimed_[static_cast<size_t>(idx)]) continue;
    bool reserved = false;
    for (hdfs::NodeId holder : locations_[static_cast<size_t>(idx)]) {
      if (!node_saturated[static_cast<size_t>(holder)]) {
        reserved = true;
        break;
      }
    }
    if (!reserved) return Choice{idx, false};
  }
  return Choice{};
}

MapSchedulingPolicy::Choice MapSchedulingPolicy::Pull(
    hdfs::NodeId node, const std::vector<bool>& node_saturated) {
  Choice choice = FindEligible(node, node_saturated);
  if (choice.task_index < 0) return choice;
  claimed_[static_cast<size_t>(choice.task_index)] = 1;
  assigned_bytes_[static_cast<size_t>(node)] +=
      lengths_[static_cast<size_t>(choice.task_index)];
  --remaining_;
  CLY_LOG(Debug) << "pull: node " << node << " claims m-" << choice.task_index
                 << (choice.data_local ? " (data-local)" : " (rack-remote)")
                 << ", " << remaining_ << " splits left";
  return choice;
}

bool MapSchedulingPolicy::HasEligible(
    hdfs::NodeId node, const std::vector<bool>& node_saturated) const {
  return FindEligible(node, node_saturated).task_index >= 0;
}

}  // namespace mr
}  // namespace clydesdale
