#ifndef CLYDESDALE_MAPREDUCE_COUNTERS_H_
#define CLYDESDALE_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/query_profile.h"

namespace clydesdale {
namespace mr {

// Standard counter names (engine-maintained). Engines add their own.
inline constexpr const char kCounterHdfsBytesReadLocal[] = "HDFS_BYTES_READ_LOCAL";
inline constexpr const char kCounterHdfsBytesReadRemote[] = "HDFS_BYTES_READ_REMOTE";
inline constexpr const char kCounterHdfsBytesWritten[] = "HDFS_BYTES_WRITTEN";
inline constexpr const char kCounterLocalBytesRead[] = "LOCAL_DISK_BYTES_READ";
inline constexpr const char kCounterMapInputRecords[] = "MAP_INPUT_RECORDS";
inline constexpr const char kCounterMapOutputRecords[] = "MAP_OUTPUT_RECORDS";
inline constexpr const char kCounterMapOutputBytes[] = "MAP_OUTPUT_BYTES";
inline constexpr const char kCounterCombineInputRecords[] = "COMBINE_INPUT_RECORDS";
inline constexpr const char kCounterCombineOutputRecords[] = "COMBINE_OUTPUT_RECORDS";
inline constexpr const char kCounterReduceInputRecords[] = "REDUCE_INPUT_RECORDS";
inline constexpr const char kCounterReduceInputGroups[] = "REDUCE_INPUT_GROUPS";
inline constexpr const char kCounterReduceOutputRecords[] = "REDUCE_OUTPUT_RECORDS";
inline constexpr const char kCounterShuffleBytes[] = "SHUFFLE_BYTES";
inline constexpr const char kCounterShuffleBytesRemote[] = "SHUFFLE_BYTES_REMOTE";
inline constexpr const char kCounterDataLocalMaps[] = "DATA_LOCAL_MAPS";
inline constexpr const char kCounterRackRemoteMaps[] = "RACK_REMOTE_MAPS";
inline constexpr const char kCounterDistCacheBytes[] = "DISTRIBUTED_CACHE_BYTES";
inline constexpr const char kCounterHdfsReadOps[] = "HDFS_READ_OPS";
inline constexpr const char kCounterHdfsReadMicros[] = "HDFS_READ_MICROS";
inline constexpr const char kCounterSchedPulls[] = "SCHED_PULLS";
inline constexpr const char kCounterStragglerAttempts[] = "STRAGGLER_ATTEMPTS";
// Late-materialization CIF scan: v2+ column blocks skipped whole via zone
// maps, and rows pruned by pushed-down predicates/key filters before decode.
inline constexpr const char kCounterCifBlocksSkipped[] = "CIF_BLOCKS_SKIPPED";
inline constexpr const char kCounterCifRowsPruned[] = "CIF_ROWS_PRUNED";
// CIF v3 compressed-scan accounting: on-disk vs plain-equivalent bytes of
// the column blocks a scan actually loaded (their ratio is the observed
// compression), plus loaded-block counts per encoding tag.
inline constexpr const char kCounterCifBytesEncoded[] = "CIF_BYTES_ENCODED";
inline constexpr const char kCounterCifBytesRaw[] = "CIF_BYTES_RAW";
inline constexpr const char kCounterCifBlocksPlain[] = "CIF_BLOCKS_PLAIN";
inline constexpr const char kCounterCifBlocksRle[] = "CIF_BLOCKS_RLE";
inline constexpr const char kCounterCifBlocksBitpack[] = "CIF_BLOCKS_BITPACK";
inline constexpr const char kCounterCifBlocksFor[] = "CIF_BLOCKS_FOR";
inline constexpr const char kCounterCifBlocksDict[] = "CIF_BLOCKS_DICT";
inline constexpr const char kCounterCifBlocksDictRle[] = "CIF_BLOCKS_DICT_RLE";
// Block-prefetcher effectiveness (cif.scan.prefetch runs only): Take() calls
// that found the block ready vs ones that blocked, and the blocked time.
inline constexpr const char kCounterCifPrefetchHits[] = "CIF_PREFETCH_HITS";
inline constexpr const char kCounterCifPrefetchMisses[] =
    "CIF_PREFETCH_MISSES";
inline constexpr const char kCounterCifPrefetchWaitNs[] =
    "CIF_PREFETCH_WAIT_NS";
// Per-operator profiler (obs.profile.enabled runs only): merged operator
// nodes in the job's QueryProfile and task attempts that contributed.
inline constexpr const char kCounterProfOperators[] = "PROF_OPERATORS";
inline constexpr const char kCounterProfTasksProfiled[] =
    "PROF_TASKS_PROFILED";
// Hierarchical memory accounting (obs.mem.enabled runs only): the job's
// high-water tracked bytes summed across its per-node trackers, the highest
// single-node high-water mark, and the configured budget (set only when
// JobConf::mem_budget_bytes > 0).
inline constexpr const char kCounterMemJobPeakBytes[] = "MEM_JOB_PEAK_BYTES";
inline constexpr const char kCounterMemNodePeakBytes[] = "MEM_NODE_PEAK_BYTES";
inline constexpr const char kCounterMemBudgetBytes[] = "MEM_BUDGET_BYTES";
// Serving-mode cross-query dim-table cache (core/dim_table_cache.h; only
// queries running with a ClydesdaleOptions::dim_cache carry these):
// per-dimension lookups served from a resident or in-flight entry vs builds
// paid, entries evicted while the query ran, and the cache's resident bytes
// when the query flushed (Set, not summed).
inline constexpr const char kCounterCacheDimHits[] = "CACHE_DIM_HITS";
inline constexpr const char kCounterCacheDimMisses[] = "CACHE_DIM_MISSES";
inline constexpr const char kCounterCacheDimEvictions[] =
    "CACHE_DIM_EVICTIONS";
inline constexpr const char kCounterCacheBytes[] = "CACHE_BYTES";

/// Every engine-maintained counter name above, for audits asserting that a
/// suitably shaped job populates all of them (tests/mapreduce_test.cc).
std::vector<std::string> StandardCounterNames();

/// Engine-maintained counters that only fire in specific situations (e.g.
/// STRAGGLER_ATTEMPTS needs a slow task), so the all-populated audit skips
/// them. Standard + situational must cover every kCounter* above —
/// scripts/check_counters.sh enforces it.
std::vector<std::string> SituationalCounterNames();

/// Named monotonically increasing job statistics, Hadoop-style. Thread-safe.
class Counters {
 public:
  Counters() = default;

  // Copy/move take the source's lock; only safe once its producers stopped.
  Counters(const Counters& other) : values_(other.Snapshot()) {}
  Counters& operator=(const Counters& other) {
    if (this != &other) {
      auto snapshot = other.Snapshot();
      std::lock_guard<std::mutex> lock(mu_);
      values_ = std::move(snapshot);
    }
    return *this;
  }
  // Moves steal the map under the source's lock, so the noexcept claim is
  // honest (no allocation on this path, unlike Snapshot()).
  Counters(Counters&& other) noexcept {
    std::lock_guard<std::mutex> lock(other.mu_);
    values_ = std::move(other.values_);
    other.values_.clear();
  }
  Counters& operator=(Counters&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lock(mu_, other.mu_);
      values_ = std::move(other.values_);
      other.values_.clear();
    }
    return *this;
  }

  void Add(const std::string& name, int64_t delta);
  void Set(const std::string& name, int64_t value);
  int64_t Get(const std::string& name) const;

  /// Merges `other` into this (summing).
  void MergeFrom(const Counters& other);

  /// Snapshot in name order.
  std::map<std::string, int64_t> Snapshot() const;

  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> values_;
};

}  // namespace mr

namespace storage {
struct ScanStats;
}  // namespace storage

namespace obs {
class MemTracker;
}  // namespace obs

namespace mr {

/// Folds one scan's CIF pruning/compression stats into `counters`: the
/// zone-map skip and row-prune counts, the encoded/raw byte totals, one
/// CIF_BLOCKS_<encoding> count per loaded block, and the prefetcher
/// hit/miss/wait accounting. Zero values are not added, so situational
/// counters stay absent from jobs that never trip them.
void AddCifScanCounters(const storage::ScanStats& stats, Counters* counters);

/// Folds a job's merged per-operator profile into `counters`
/// (PROF_OPERATORS / PROF_TASKS_PROFILED). No-op for an empty profile.
void AddQueryProfileCounters(const obs::QueryProfile& profile,
                             Counters* counters);

/// Folds the job's MemTracker high-water marks into `counters` at job end:
/// MEM_JOB_PEAK_BYTES (sum of the job's per-node tracker peaks),
/// MEM_NODE_PEAK_BYTES (largest single per-node peak) and MEM_BUDGET_BYTES
/// (the configured limit). Zero values are not added, so untracked jobs
/// carry no MEM_* counters.
void AddMemTrackerCounters(
    const std::vector<std::shared_ptr<obs::MemTracker>>& job_trackers,
    uint64_t budget_bytes, Counters* counters);

/// Folds serving-mode dim-table cache activity into `counters` — the only
/// place the CACHE_* counters are populated (scripts/check_counters.sh
/// audit #7). Hits/misses/evictions are summed deltas; `resident_bytes` is
/// the cache's current footprint and overwrites (Set) rather than sums.
/// Zero deltas and negative bytes are not recorded, so cache-less jobs carry
/// no CACHE_* counters.
void AddDimCacheCounters(int64_t hits, int64_t misses, int64_t evictions,
                         int64_t resident_bytes, Counters* counters);

/// Builds one "scan" OperatorProfile node (tasks=1) from a completed scan's
/// stats: rows out, decoded/raw bytes, skip/prune counts, per-encoding block
/// histogram and prefetch accounting, plus the caller-measured timings.
obs::OperatorProfile ScanProfileNode(const std::string& name,
                                     const storage::ScanStats& stats,
                                     uint64_t wall_ns, uint64_t cpu_ns);

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_COUNTERS_H_
