#ifndef CLYDESDALE_MAPREDUCE_MAP_RUNNER_H_
#define CLYDESDALE_MAPREDUCE_MAP_RUNNER_H_

#include <memory>

#include "common/status.h"
#include "mapreduce/input_format.h"
#include "mapreduce/mr_types.h"
#include "mapreduce/task_context.h"

namespace clydesdale {
namespace mr {

/// The Hadoop MapRunner extensibility point (paper §3): owns the loop that
/// drives records from the split through the map logic. Clydesdale swaps in
/// a multi-threaded runner (core/star_join_job) without engine changes.
class MapRunner {
 public:
  virtual ~MapRunner() = default;

  /// Processes the whole split, emitting through `out`. `input_format` is the
  /// job's InputFormat instance, usable to open per-constituent readers.
  /// Cluster services and the job configuration come from `context`
  /// (context->cluster() / context->conf()) — runners see only what a task
  /// is allowed to touch, not the engine's internals.
  virtual Status Run(const InputSplit& split, InputFormat* input_format,
                     TaskContext* context, OutputCollector* out) = 0;
};

/// Stock behaviour: open one reader, apply the job's Mapper record by record
/// in a single thread.
class DefaultMapRunner final : public MapRunner {
 public:
  Status Run(const InputSplit& split, InputFormat* input_format,
             TaskContext* context, OutputCollector* out) override;
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_MAP_RUNNER_H_
