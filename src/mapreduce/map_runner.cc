#include "mapreduce/map_runner.h"

#include "mapreduce/counters.h"

namespace clydesdale {
namespace mr {

Status DefaultMapRunner::Run(const InputSplit& split,
                             InputFormat* input_format, TaskContext* context,
                             OutputCollector* out) {
  const JobConf& conf = context->conf();
  if (!conf.mapper_factory) {
    return Status::InvalidArgument("job has no mapper factory");
  }
  std::unique_ptr<Mapper> mapper = conf.mapper_factory();
  CLY_RETURN_IF_ERROR(mapper->Setup(context));

  CLY_ASSIGN_OR_RETURN(
      std::unique_ptr<RecordReader> reader,
      input_format->CreateReader(context->cluster(), conf, split, context));
  Row key, value;
  int64_t records = 0;
  while (true) {
    CLY_ASSIGN_OR_RETURN(bool more, reader->Next(&key, &value));
    if (!more) break;
    CLY_RETURN_IF_ERROR(mapper->Map(key, value, context, out));
    ++records;
  }
  context->counters()->Add(kCounterMapInputRecords, records);
  return mapper->Cleanup(context, out);
}

}  // namespace mr
}  // namespace clydesdale
