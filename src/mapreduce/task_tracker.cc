#include "mapreduce/task_tracker.h"

#include <algorithm>

#include "common/logging.h"
#include "mapreduce/job_runner.h"

namespace clydesdale {
namespace mr {

TaskTracker::TaskTracker(hdfs::NodeId node, int map_slots, int reduce_slots)
    : node_(node),
      map_slots_(std::max(map_slots, 1)),
      reduce_slots_(std::max(reduce_slots, 1)) {
  workers_.reserve(static_cast<size_t>(map_slots_ + reduce_slots_));
  for (int s = 0; s < map_slots_; ++s) {
    workers_.emplace_back([this] { WorkerLoop(/*reduce_slot=*/false); });
  }
  for (int s = 0; s < reduce_slots_; ++s) {
    workers_.emplace_back([this] { WorkerLoop(/*reduce_slot=*/true); });
  }
}

TaskTracker::~TaskTracker() {
  BeginShutdown();
  JoinWorkers();
}

void TaskTracker::BeginShutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

void TaskTracker::JoinWorkers() {
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void TaskTracker::Attach(std::shared_ptr<JobRunner> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_all();
}

void TaskTracker::Detach(const JobRunner* job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                               [job](const std::shared_ptr<JobRunner>& j) {
                                 return j.get() == job;
                               }),
                jobs_.end());
  }
  cv_.notify_all();
}

void TaskTracker::Wake() {
  // Taking the lock (even empty) orders this wake after any worker's
  // check-then-wait: a worker that just saw "no work" is already inside
  // cv_.wait by the time we can acquire mu_, so the notify reaches it.
  { std::lock_guard<std::mutex> lock(mu_); }
  cv_.notify_all();
}

void TaskTracker::WorkerLoop(bool reduce_slot) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    std::shared_ptr<JobRunner> job;
    for (const std::shared_ptr<JobRunner>& j : jobs_) {
      if (j->HasRunnableWork(node_, reduce_slot)) {
        job = j;
        break;
      }
    }
    if (job == nullptr) {
      if (shutdown_) return;
      cv_.wait(lock);
      continue;
    }
    // Run outside the tracker lock; the shared_ptr keeps the runner alive
    // even if the job finishes (and is detached) while this attempt runs.
    lock.unlock();
    job->TryRunWork(node_, reduce_slot);
    lock.lock();
  }
}

}  // namespace mr
}  // namespace clydesdale
