#ifndef CLYDESDALE_MAPREDUCE_SCHEDULER_H_
#define CLYDESDALE_MAPREDUCE_SCHEDULER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "mapreduce/input_format.h"

namespace clydesdale {
namespace mr {

/// One map task placed on a node.
struct ScheduledTask {
  int task_index = 0;
  std::shared_ptr<InputSplit> split;
  hdfs::NodeId node = hdfs::kNoNode;
  bool data_local = false;
};

/// Locality-aware placement: splits (largest first) go to the least-loaded
/// node among their replica holders, falling back to the least-loaded node
/// anywhere (a rack-remote map). Load is measured in assigned bytes, which
/// approximates how Hadoop's locality-delay scheduling balances long jobs.
std::vector<ScheduledTask> ScheduleMapTasks(
    const std::vector<std::shared_ptr<InputSplit>>& splits, int num_nodes);

/// Reduce tasks are spread round-robin across nodes.
std::vector<hdfs::NodeId> ScheduleReduceTasks(int num_reduce_tasks,
                                              int num_nodes);

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_SCHEDULER_H_
