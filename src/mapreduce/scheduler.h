#ifndef CLYDESDALE_MAPREDUCE_SCHEDULER_H_
#define CLYDESDALE_MAPREDUCE_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "mapreduce/input_format.h"

namespace clydesdale {
namespace mr {

/// Late-binding map placement, consulted one pull at a time: when a tracker
/// slot frees up it asks the policy for work, and the answer is made with
/// up-to-the-moment knowledge of what every other node is doing — the shape
/// of Hadoop's heartbeat scheduling, replacing the old static
/// ScheduleMapTasks placement pass.
///
/// A pull prefers the largest unclaimed split stored on the pulling node
/// (largest-first evens out per-node bytes over the job). With no local
/// candidate the puller falls back to the largest remaining split anywhere —
/// a rack-remote map — but skips splits whose replica holders still have a
/// free map slot, since those nodes will pull their local work themselves
/// the moment a slot opens. That reservation is the locality-delay analogue:
/// without it, whichever node finishes first would steal still-idle nodes'
/// local splits in the first heartbeat.
///
/// Not thread-safe; the JobRunner serialises pulls under its own lock.
class MapSchedulingPolicy {
 public:
  MapSchedulingPolicy(const std::vector<std::shared_ptr<InputSplit>>& splits,
                      int num_nodes);

  struct Choice {
    int task_index = -1;  ///< -1: nothing grantable to this node right now
    bool data_local = false;
  };

  /// Answers one pull from `node` and claims the chosen split.
  /// `node_saturated[n]` marks nodes with no free map slot (claimed splits
  /// local to an unsaturated node are never handed out remotely).
  Choice Pull(hdfs::NodeId node, const std::vector<bool>& node_saturated);

  /// Would Pull grant this node anything? Claims nothing.
  bool HasEligible(hdfs::NodeId node,
                   const std::vector<bool>& node_saturated) const;

  /// Unclaimed splits left.
  int remaining() const { return remaining_; }

  /// Input bytes claimed by pulls from `node` so far (fairness tests).
  uint64_t assigned_bytes(hdfs::NodeId node) const {
    return assigned_bytes_[static_cast<size_t>(node)];
  }

 private:
  Choice FindEligible(hdfs::NodeId node,
                      const std::vector<bool>& node_saturated) const;

  int num_nodes_;
  std::vector<uint64_t> lengths_;
  /// Valid (in-cluster) replica holders per split.
  std::vector<std::vector<hdfs::NodeId>> locations_;
  std::vector<char> claimed_;
  /// Per node: its local split indices, largest first.
  std::vector<std::vector<int>> local_;
  /// All split indices, largest first (remote fallback scan order).
  std::vector<int> order_;
  std::vector<uint64_t> assigned_bytes_;
  int remaining_ = 0;
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_SCHEDULER_H_
