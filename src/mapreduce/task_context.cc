#include "mapreduce/task_context.h"

#include "common/strings.h"
#include "mapreduce/cluster_metrics.h"
#include "mapreduce/engine.h"

namespace clydesdale {
namespace mr {

TaskContext::TaskContext(const JobConf* conf, MrCluster* cluster,
                         int task_index, hdfs::NodeId node, int allowed_threads,
                         std::shared_ptr<SharedJvmState> shared,
                         Counters* counters, obs::TraceRecorder* trace,
                         obs::HistogramRegistry* histograms, int attempt)
    : conf_(conf),
      cluster_(cluster),
      task_index_(task_index),
      node_(node),
      allowed_threads_(allowed_threads),
      shared_(std::move(shared)),
      counters_(counters),
      trace_(trace),
      histograms_(histograms),
      attempt_(attempt),
      profile_enabled_(conf->GetBool(kConfProfileEnabled)) {}

void TaskContext::AddProfileOperator(obs::OperatorProfile op) {
  std::lock_guard<std::mutex> lock(profile_mu_);
  profile_ops_.push_back(std::move(op));
}

std::vector<obs::OperatorProfile> TaskContext::TakeProfileOperators() {
  std::lock_guard<std::mutex> lock(profile_mu_);
  return std::move(profile_ops_);
}

std::string TaskContext::DebugLabel(bool is_map) const {
  // Attempt 0 stays terse ("job/m-3@node1"); retries show ".<attempt>".
  if (attempt_ == 0) {
    return StrCat(conf_->job_name, "/", is_map ? "m" : "r", "-", task_index_,
                  "@node", node_);
  }
  return StrCat(conf_->job_name, "/", is_map ? "m" : "r", "-", task_index_,
                ".", attempt_, "@node", node_);
}

hdfs::LocalStore* TaskContext::local_store() {
  return cluster_->local_store(node_);
}

void TaskContext::MergeIoStats(const hdfs::IoStats& stats) {
  std::lock_guard<std::mutex> lock(io_mu_);
  io_stats_.Add(stats);
}

Result<std::string> TaskContext::CacheFilePath(
    const std::string& dfs_path) const {
  for (const std::string& registered : conf_->distributed_cache) {
    if (registered == dfs_path) {
      // The engine materialized the file here during job setup (the instance
      // id keeps concurrent jobs with equal names apart).
      return StrCat("/dcache/", conf_->GetInt("mr.job.instance"), dfs_path);
    }
  }
  return Status::NotFound(
      StrCat("'", dfs_path, "' is not in the job's distributed cache"));
}

}  // namespace mr
}  // namespace clydesdale
