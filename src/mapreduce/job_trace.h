#ifndef CLYDESDALE_MAPREDUCE_JOB_TRACE_H_
#define CLYDESDALE_MAPREDUCE_JOB_TRACE_H_

#include <string>

#include "common/status.h"
#include "mapreduce/job_report.h"

namespace clydesdale {
namespace mr {

// Tracing configuration (JobConf string properties). Engines forward these
// from their options; see ClydesdaleOptions / HiveOptions.
/// "true" turns span recording on for the job (histograms and counters are
/// always maintained; only spans are gated, to keep the hot path free).
inline constexpr const char kConfTraceEnabled[] = "obs.trace.enabled";
/// When set (and tracing is on), the engine writes
/// `<dir>/<job_name>-<instance>.trace.json` (Chrome trace_event format) and
/// `<dir>/<job_name>-<instance>.timeline.txt` next to the job's output.
inline constexpr const char kConfTraceDir[] = "obs.trace.dir";

// Standard histogram names maintained by the engine (JobReport::histograms).
inline constexpr const char kHistMapTaskMicros[] = "MAP_TASK_MICROS";
inline constexpr const char kHistReduceTaskMicros[] = "REDUCE_TASK_MICROS";
inline constexpr const char kHistShuffleFetchBytes[] = "SHUFFLE_FETCH_BYTES";
inline constexpr const char kHistShuffleFetchMicros[] = "SHUFFLE_FETCH_MICROS";
inline constexpr const char kHistReduceGroupSize[] = "REDUCE_GROUP_SIZE";
inline constexpr const char kHistHdfsReadMicros[] = "HDFS_READ_MICROS";

/// The straggler chain of one job: the slowest map feeds the shuffle
/// barrier, which gates the slowest reduce (the classic MapReduce
/// critical path). Skew = slowest / mean task time per phase; a skew near
/// 1 means the phase is balanced, large skew names the straggler.
struct CriticalPathReport {
  double setup_seconds = 0;       ///< pre-map work (splits, cache, open)
  double map_phase_seconds = 0;   ///< start of first map to last map done
  double reduce_phase_seconds = 0;
  double commit_seconds = 0;
  /// Pipelined shuffle: how long reducers were fetching while maps still
  /// ran (the derived "shuffle-overlap" span). 0 = hard barrier.
  double shuffle_overlap_seconds = 0;
  double wall_seconds = 0;

  int slowest_map = -1;  ///< task index, -1 when the job had no maps
  hdfs::NodeId slowest_map_node = hdfs::kNoNode;
  double slowest_map_seconds = 0;
  double map_skew = 0;

  int slowest_reduce = -1;  ///< -1 for map-only jobs
  hdfs::NodeId slowest_reduce_node = hdfs::kNoNode;
  double slowest_reduce_seconds = 0;
  double reduce_skew = 0;

  /// "m-3@node1 (1.2s, skew 1.8) -> shuffle barrier -> r-0@node2 ...".
  std::string ToString() const;
};

/// Derives the straggler chain and per-phase skew from a finished report.
/// Phase durations come from the report's phase spans when present and
/// fall back to per-task wall times otherwise.
CriticalPathReport CriticalPath(const JobReport& report);

/// Human-readable per-job timeline: one line per phase/task span with a
/// proportional bar, plus histogram summaries and the critical path.
std::string TimelineText(const JobReport& report);

/// Writes `<dir>/<base>.trace.json` + `<dir>/<base>.timeline.txt` where
/// `base` is "<job_name>-<instance>". Used by the engine when
/// kConfTraceDir is set; callers may also invoke it directly.
Status WriteJobTrace(const JobReport& report, const std::string& dir,
                     int64_t instance);

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_JOB_TRACE_H_
