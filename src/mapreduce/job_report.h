#ifndef CLYDESDALE_MAPREDUCE_JOB_REPORT_H_
#define CLYDESDALE_MAPREDUCE_JOB_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hdfs/block.h"
#include "mapreduce/counters.h"
#include "obs/histogram.h"
#include "obs/metrics_poller.h"
#include "obs/query_profile.h"
#include "obs/trace.h"

namespace clydesdale {
namespace mr {

/// Everything recorded about one executed task; the discrete-event cost
/// model replays these profiles at cluster scale.
struct TaskReport {
  int index = 0;
  /// Which attempt at this task produced the report (0 unless retried).
  int attempt = 0;
  bool is_map = true;
  hdfs::NodeId node = hdfs::kNoNode;
  /// Input bytes read from HDFS, split by locality.
  uint64_t hdfs_local_bytes = 0;
  uint64_t hdfs_remote_bytes = 0;
  /// Bytes read from the node-local disk (dimension replicas, dist cache).
  uint64_t local_disk_bytes = 0;
  uint64_t input_records = 0;
  uint64_t output_records = 0;
  uint64_t output_bytes = 0;
  /// Reduce only: shuffle input, split by map-task node locality.
  uint64_t shuffle_bytes_total = 0;
  uint64_t shuffle_bytes_remote = 0;
  /// True when the task ran on a node holding its input locally.
  bool data_local = false;
  /// Constituent storage splits processed (multi-splits > 1).
  int num_constituents = 1;
  double wall_seconds = 0;
};

/// The outcome of one MapReduce job.
struct JobReport {
  std::string job_name;
  int num_nodes = 0;
  std::vector<TaskReport> map_tasks;
  std::vector<TaskReport> reduce_tasks;
  Counters counters;
  /// Distribution metrics (map time, shuffle bytes, group sizes, ...) keyed
  /// by the kHist* names in job_trace.h. Always populated.
  obs::HistogramRegistry histograms;
  /// Spans drained from the job's TraceRecorder, sorted by start time.
  /// Empty unless the job ran with kConfTraceEnabled.
  std::vector<obs::SpanRecord> spans;
  /// Live-metrics trajectory sampled by the MetricsPoller and the final
  /// Prometheus-text snapshot. Empty unless kConfMetricsEnabled.
  obs::MetricsTimeSeries metrics_series;
  std::string metrics_prom;
  /// Per-operator execution profile merged tree-structurally across task
  /// attempts (obs/query_profile.h). Empty unless kConfProfileEnabled.
  obs::QueryProfile profile;
  double wall_seconds = 0;

  uint64_t TotalMapInputBytes() const;
  uint64_t TotalShuffleBytes() const;
  uint64_t TotalOutputRecords() const;
  int DataLocalMaps() const;
  std::string Summary() const;
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_JOB_REPORT_H_
