#ifndef CLYDESDALE_MAPREDUCE_TASK_ATTEMPT_H_
#define CLYDESDALE_MAPREDUCE_TASK_ATTEMPT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "mapreduce/input_format.h"
#include "mapreduce/job_report.h"

namespace clydesdale {
namespace mr {

/// Lifecycle of one task attempt. Valid transitions:
///
///   kQueued --> kRunning --> kSucceeded
///      |            |
///      |            +------> kFailed      (task code returned an error)
///      +-------------------> kFailed      (killed before launch: job abort)
///
/// Succeeded and failed are terminal. Everything else is rejected.
enum class AttemptState { kQueued, kRunning, kSucceeded, kFailed };

/// Lower-case state name for logs and errors ("queued", "running", ...).
const char* AttemptStateName(AttemptState state);

/// One attempt at executing one task: the unit the JobRunner hands out when
/// a TaskTracker pulls work. Carries the attempt's identity (task index +
/// attempt number), its pull-time placement, and the execution outcome —
/// the attempt-number machinery is what the ROADMAP's retry/speculation
/// items will build on (today every task runs exactly attempt 0).
class TaskAttempt {
 public:
  TaskAttempt(int task_index, int attempt, bool is_map)
      : task_index_(task_index), attempt_(attempt), is_map_(is_map) {}

  int task_index() const { return task_index_; }
  int attempt() const { return attempt_; }
  bool is_map() const { return is_map_; }
  AttemptState state() const { return state_; }
  bool terminal() const {
    return state_ == AttemptState::kSucceeded ||
           state_ == AttemptState::kFailed;
  }

  /// Advances the state machine, rejecting invalid edges (see the diagram
  /// above) with Internal. The caller guards concurrent access; an attempt
  /// is owned by the JobRunner lock between pull and completion.
  Status Transition(AttemptState next);

  /// "m-3.0" / "r-1.2": task kind + index + attempt number.
  std::string Label() const;

  // --- pull-time binding (set when a tracker claims the attempt) -----------
  hdfs::NodeId node = hdfs::kNoNode;
  bool data_local = false;
  /// Map attempts only: the split to process.
  std::shared_ptr<InputSplit> split;
  /// JobRunner-clock start time (set on claim; -1 while queued). The live
  /// straggler probe compares running attempts' elapsed time against the
  /// completed-attempt median.
  int64_t start_us = -1;
  /// Set (under the runner lock) when the straggler detector flags the
  /// attempt; keeps the gauge/counter/history event edge-triggered.
  bool straggler_flagged = false;

  // --- execution outcome ---------------------------------------------------
  Status status = Status::OK();
  TaskReport report;

 private:
  const int task_index_;
  const int attempt_;
  const bool is_map_;
  AttemptState state_ = AttemptState::kQueued;
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_TASK_ATTEMPT_H_
