#ifndef CLYDESDALE_MAPREDUCE_TASK_TRACKER_H_
#define CLYDESDALE_MAPREDUCE_TASK_TRACKER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "hdfs/block.h"

namespace clydesdale {
namespace mr {

class JobRunner;

/// One node's persistent executor: a slot-bounded worker pool that outlives
/// any single job, the analogue of a Hadoop TaskTracker daemon (and of its
/// reused JVMs — workers, like reused JVMs, are started once and handed task
/// after task). Owned by MrCluster, one per node.
///
/// Workers are pull-driven: each loops over the attached jobs asking
/// HasRunnableWork and sleeps on a condition variable when every job says
/// no — an idle tracker never spins. Map slots and reduce slots get separate
/// workers because a pipelined reducer parks inside the shuffle wait while
/// maps are still running; sharing slots would let waiting reducers starve
/// the maps they are waiting on.
///
/// Lock order: tracker mutex before JobRunner mutex (workers hold mu_ while
/// polling jobs). JobRunner must therefore only call Wake/Attach/Detach
/// while not holding its own lock.
class TaskTracker {
 public:
  TaskTracker(hdfs::NodeId node, int map_slots, int reduce_slots);
  ~TaskTracker();  ///< Drains: signals shutdown and joins every worker.

  /// Two-phase shutdown, for owners of *several* trackers. A worker finishing
  /// its last attempt wakes every sibling tracker (WakeAllTrackers), so no
  /// tracker's condition variable may be destroyed while any tracker still
  /// has a live worker: signal all pools first, then join all, then destroy.
  /// ~TaskTracker calls both, so standalone use needs neither.
  void BeginShutdown();  ///< Sets the shutdown flag and wakes the pool.
  void JoinWorkers();    ///< Joins every worker; idempotent.

  TaskTracker(const TaskTracker&) = delete;
  TaskTracker& operator=(const TaskTracker&) = delete;

  hdfs::NodeId node() const { return node_; }
  int map_slots() const { return map_slots_; }
  int reduce_slots() const { return reduce_slots_; }

  /// Makes the job's work visible to this tracker's workers.
  void Attach(std::shared_ptr<JobRunner> job);
  /// Removes the job; the caller must have waited for all its attempts to
  /// reach a terminal state first.
  void Detach(const JobRunner* job);

  /// Re-evaluate runnable work (a slot freed elsewhere, the map phase
  /// finished, a job aborted). Safe from any thread not holding mu_.
  void Wake();

 private:
  void WorkerLoop(bool reduce_slot);

  const hdfs::NodeId node_;
  const int map_slots_;
  const int reduce_slots_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::vector<std::shared_ptr<JobRunner>> jobs_;
  std::vector<std::thread> workers_;
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_TASK_TRACKER_H_
