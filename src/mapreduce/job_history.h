#ifndef CLYDESDALE_MAPREDUCE_JOB_HISTORY_H_
#define CLYDESDALE_MAPREDUCE_JOB_HISTORY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "hdfs/local_store.h"
#include "mapreduce/counters.h"
#include "mapreduce/job_report.h"
#include "mapreduce/straggler.h"

namespace clydesdale {
namespace mr {

/// Canonical history-file path for a job instance on the cluster's node-0
/// local store — the analogue of the Hadoop JobHistoryServer's done-dir.
std::string JobHistoryPath(int64_t instance);

/// Structured JSONL job-history log: one event object per line, recording
/// every attempt state transition, straggler flag, counter snapshot, phase
/// timing, and the job outcome. Append-only and thread-safe (trackers log
/// concurrently). Timestamps (`t_us`) are microseconds since the recorder
/// was constructed, on its own steady clock.
class JobHistoryRecorder {
 public:
  JobHistoryRecorder(std::string job_name, int64_t instance);

  JobHistoryRecorder(const JobHistoryRecorder&) = delete;
  JobHistoryRecorder& operator=(const JobHistoryRecorder&) = delete;

  int64_t instance() const { return instance_; }
  int64_t NowMicros() const { return clock_.ElapsedMicros(); }

  void RecordJobSubmitted(int num_nodes, int num_maps, int num_reduces);
  /// `state` transitions: attempt claimed by a tracker ("running"), then
  /// exactly one of "succeeded" (with the full TaskReport), "failed", or
  /// "killed" (job abort reaped it before it ran).
  void RecordAttemptRunning(bool is_map, int task, int attempt, int node);
  void RecordAttemptFinished(const TaskReport& report, const char* state,
                             const std::string& status_msg);
  void RecordStraggler(const StragglerFlag& flag);
  /// Counter snapshot at a named point ("map-end", "final").
  void RecordCountersSnapshot(const std::string& label,
                              const Counters& counters);
  /// Phase timing copied from a drained trace span ("map-phase", ...), so a
  /// traced run's history reconstructs the same critical path, exactly.
  void RecordPhase(const std::string& name, const std::string& category,
                   int64_t start_us, int64_t dur_us);
  void RecordJobFinished(const Status& status, const JobReport& report);

  size_t num_events() const;

  /// The JSONL document (one event per line, submission order).
  std::string Serialize() const;

 private:
  void Append(std::string line);

  const std::string job_name_;
  const int64_t instance_;
  const Stopwatch clock_;

  mutable std::mutex mu_;
  std::vector<std::string> events_;
};

/// Writes the recorder's JSONL to the store at JobHistoryPath(instance).
Status WriteJobHistory(hdfs::LocalStore* store,
                       const JobHistoryRecorder& recorder);

/// Reads the JSONL for an instance back from the store.
Result<std::string> ReadJobHistory(hdfs::LocalStore* store, int64_t instance);

/// Rebuilds a JobReport from a history document alone: job name, node
/// count, per-task reports (from "succeeded" attempt events, sorted by
/// kind/index/attempt), counters (last snapshot), phase spans, the merged
/// per-operator query profile ("profile"/"profile_span" events), and wall
/// time. Counters, phase timings, and the profile round-trip
/// byte-equivalent to the live report. Histograms are not logged and come
/// back empty.
Result<JobReport> ReconstructJobReport(std::string_view jsonl);

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_JOB_HISTORY_H_
