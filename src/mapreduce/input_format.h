#ifndef CLYDESDALE_MAPREDUCE_INPUT_FORMAT_H_
#define CLYDESDALE_MAPREDUCE_INPUT_FORMAT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapreduce/job_conf.h"
#include "mapreduce/task_context.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace mr {

class MrCluster;

/// A schedulable chunk of input. The two concrete shapes are a single
/// storage split and a multi-split packing several of them (MultiCIF).
class InputSplit {
 public:
  virtual ~InputSplit() = default;
  /// Scheduling weight in bytes.
  virtual uint64_t Length() const = 0;
  /// Nodes where the data is local.
  virtual std::vector<hdfs::NodeId> Locations() const = 0;
  /// Constituent storage splits (one for plain splits, k for multi-splits).
  virtual std::vector<const storage::StorageSplit*> Constituents() const = 0;
};

/// Iterator over the key/value records of one split. Keys of table scans are
/// empty rows (Hadoop would use byte offsets; nothing consumes them here).
class RecordReader {
 public:
  virtual ~RecordReader() = default;
  virtual Result<bool> Next(Row* key, Row* value) = 0;
};

/// The Hadoop InputFormat extensibility point (paper §3): split generation
/// plus record reading.
class InputFormat {
 public:
  virtual ~InputFormat() = default;

  virtual Result<std::vector<std::shared_ptr<InputSplit>>> GetSplits(
      MrCluster* cluster, const JobConf& conf) = 0;

  /// Reader over the whole split (all constituents, concatenated).
  virtual Result<std::unique_ptr<RecordReader>> CreateReader(
      MrCluster* cluster, const JobConf& conf, const InputSplit& split,
      TaskContext* context) = 0;

  /// Reader over one constituent storage split. Multi-threaded runners call
  /// this to give each thread its own deserialization stream (MultiCIF,
  /// paper §5.1); single-split formats accept only their own constituent.
  virtual Result<std::unique_ptr<RecordReader>> CreateConstituentReader(
      MrCluster* cluster, const JobConf& conf,
      const storage::StorageSplit& split, TaskContext* context) = 0;
};

// --- Configuration keys consumed by the stock input formats -----------------

/// DFS directory of the input table.
inline constexpr const char kConfInputTable[] = "input.table";
/// Comma-separated projection pushed into the storage layer.
inline constexpr const char kConfInputProjection[] = "input.projection";
/// For MultiCifInputFormat: how many storage splits to pack per multi-split.
/// 0 (default) packs each node's local splits into a single multi-split.
inline constexpr const char kConfMultiSplitSize[] = "multicif.splits.per.multisplit";
/// For MultiTableInputFormat: comma-separated list of table paths. Values are
/// tagged with an int32 table ordinal as field 0.
inline constexpr const char kConfInputTables[] = "input.tables";
/// Late-materialization scan of v2 CIF tables (zone-map block skipping,
/// predicate/key-filter pushdown, zero-copy string decode). Default on;
/// results are byte-identical either way — the knob is the A/B switch.
inline constexpr const char kConfCifLateMaterialize[] = "cif.scan.late_materialize";
/// Double-buffered async block read-ahead in the CIF late-materialization
/// scan: a worker thread fetches the next column block while the current one
/// decodes. Off by default; results are byte-identical either way.
inline constexpr const char kConfCifPrefetch[] = "cif.scan.prefetch";

/// Scans one stored table (any format); value = (projected) row, key = {}.
class TableInputFormat : public InputFormat {
 public:
  TableInputFormat() = default;

  Result<std::vector<std::shared_ptr<InputSplit>>> GetSplits(
      MrCluster* cluster, const JobConf& conf) override;
  Result<std::unique_ptr<RecordReader>> CreateReader(
      MrCluster* cluster, const JobConf& conf, const InputSplit& split,
      TaskContext* context) override;
  Result<std::unique_ptr<RecordReader>> CreateConstituentReader(
      MrCluster* cluster, const JobConf& conf,
      const storage::StorageSplit& split, TaskContext* context) override;
};

/// MultiCIF (paper §5.1): packs several CIF splits into one multi-split so a
/// multi-threaded map task can read constituents in parallel without a
/// synchronized RecordReader bottleneck. Locality-aware: only splits sharing
/// a preferred node are packed together.
class MultiCifInputFormat : public InputFormat {
 public:
  MultiCifInputFormat() = default;

  Result<std::vector<std::shared_ptr<InputSplit>>> GetSplits(
      MrCluster* cluster, const JobConf& conf) override;
  Result<std::unique_ptr<RecordReader>> CreateReader(
      MrCluster* cluster, const JobConf& conf, const InputSplit& split,
      TaskContext* context) override;
  Result<std::unique_ptr<RecordReader>> CreateConstituentReader(
      MrCluster* cluster, const JobConf& conf,
      const storage::StorageSplit& split, TaskContext* context) override;
};

/// Scans several tables; each value row is prefixed with an int32 table
/// ordinal (field 0) so the mapper can tell the sides of a repartition join
/// apart (Hive's tagged common join, paper §6.1).
class MultiTableInputFormat : public InputFormat {
 public:
  MultiTableInputFormat() = default;

  Result<std::vector<std::shared_ptr<InputSplit>>> GetSplits(
      MrCluster* cluster, const JobConf& conf) override;
  Result<std::unique_ptr<RecordReader>> CreateReader(
      MrCluster* cluster, const JobConf& conf, const InputSplit& split,
      TaskContext* context) override;
  Result<std::unique_ptr<RecordReader>> CreateConstituentReader(
      MrCluster* cluster, const JobConf& conf,
      const storage::StorageSplit& split, TaskContext* context) override;
};

/// Plain split holding one storage split.
class StorageInputSplit final : public InputSplit {
 public:
  explicit StorageInputSplit(storage::StorageSplit split)
      : split_(std::move(split)) {}

  uint64_t Length() const override { return split_.length_bytes; }
  std::vector<hdfs::NodeId> Locations() const override {
    return split_.preferred_nodes;
  }
  std::vector<const storage::StorageSplit*> Constituents() const override {
    return {&split_};
  }
  const storage::StorageSplit& storage_split() const { return split_; }

 private:
  storage::StorageSplit split_;
};

/// A bundle of storage splits handled by one map task.
class MultiSplit final : public InputSplit {
 public:
  MultiSplit(std::vector<storage::StorageSplit> splits,
             std::vector<hdfs::NodeId> locations)
      : splits_(std::move(splits)), locations_(std::move(locations)) {}

  uint64_t Length() const override {
    uint64_t total = 0;
    for (const auto& s : splits_) total += s.length_bytes;
    return total;
  }
  std::vector<hdfs::NodeId> Locations() const override { return locations_; }
  std::vector<const storage::StorageSplit*> Constituents() const override {
    std::vector<const storage::StorageSplit*> out;
    out.reserve(splits_.size());
    for (const auto& s : splits_) out.push_back(&s);
    return out;
  }

 private:
  std::vector<storage::StorageSplit> splits_;
  std::vector<hdfs::NodeId> locations_;
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_INPUT_FORMAT_H_
