#ifndef CLYDESDALE_MAPREDUCE_JOB_CONF_H_
#define CLYDESDALE_MAPREDUCE_JOB_CONF_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapreduce/mr_types.h"

namespace clydesdale {

namespace storage {
struct ScanSpec;
}  // namespace storage

namespace mr {

class InputFormat;
class OutputFormat;
class MapRunner;

/// Job configuration: string properties plus typed component factories (the
/// C++ stand-in for Hadoop's reflective class-name configuration). Factories
/// are invoked once per task, so user components may keep per-task state.
class JobConf {
 public:
  JobConf() = default;

  // --- string properties ----------------------------------------------------
  void Set(const std::string& key, const std::string& value) {
    conf_[key] = value;
  }
  void SetInt(const std::string& key, int64_t value);
  void SetBool(const std::string& key, bool value);
  void SetDouble(const std::string& key, double value);
  std::string Get(const std::string& key, const std::string& def = "") const;
  int64_t GetInt(const std::string& key, int64_t def = 0) const;
  bool GetBool(const std::string& key, bool def = false) const;
  double GetDouble(const std::string& key, double def = 0) const;
  /// Comma-separated list property.
  std::vector<std::string> GetList(const std::string& key) const;
  void SetList(const std::string& key, const std::vector<std::string>& items);
  bool Has(const std::string& key) const { return conf_.count(key) > 0; }

  // --- job shape -------------------------------------------------------------
  std::string job_name = "job";
  int num_reduce_tasks = 1;
  /// Hadoop JVM-reuse analogue: consecutive tasks of this job on a node share
  /// TaskContext::GetOrCreateShared state (paper §5.2).
  bool jvm_reuse = false;
  /// Capacity-scheduler memory hint: at most one concurrent map task of this
  /// job per node (paper §5.2, requirement 1).
  bool single_task_per_node = false;
  /// Overlap reduce-side shuffle fetch with the map phase (Hadoop's default
  /// behaviour): reducers fetch and merge runs as map tasks publish them.
  /// Off = classic barrier (reducers start only after the last map). Output
  /// is byte-identical either way; the knob exists for A/B measurement.
  bool pipelined_shuffle = true;
  /// DFS paths broadcast to every node's local disk before the job starts
  /// (Hive's mapjoin hash-table dissemination path, paper §6.1).
  std::vector<std::string> distributed_cache;
  /// Predicates pushed into the storage scan by the stock input formats
  /// (the typed analogue of Hive's serialized filter-expression property).
  /// Scans treat it as advisory: every returned row is still re-checked by
  /// the consumer, so a null or partial spec is always correct.
  std::shared_ptr<const storage::ScanSpec> scan_spec;
  /// Per-job memory budget enforced by the obs::MemTracker tree: the job's
  /// per-node trackers are created with this limit, so any tracked consumer
  /// (dim hash tables, shuffle runs, scan arenas) that would push the job
  /// past it fails the attempt with ResourceExhausted. Admission control in
  /// the engine additionally rejects jobs whose estimated dimension
  /// hash-table footprint already exceeds the budget. 0 = unlimited.
  uint64_t mem_budget_bytes = 0;

  // --- component factories ----------------------------------------------------
  using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
  using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;
  using PartitionerFactory = std::function<std::unique_ptr<Partitioner>()>;
  using InputFormatFactory = std::function<std::unique_ptr<InputFormat>()>;
  using OutputFormatFactory = std::function<std::unique_ptr<OutputFormat>()>;
  using MapRunnerFactory = std::function<std::unique_ptr<MapRunner>()>;

  MapperFactory mapper_factory;
  ReducerFactory reducer_factory;
  /// Optional; runs on sorted map output before the shuffle.
  ReducerFactory combiner_factory;
  /// Defaults to HashPartitioner when unset.
  PartitionerFactory partitioner_factory;
  InputFormatFactory input_format_factory;
  OutputFormatFactory output_format_factory;
  /// Defaults to the single-threaded DefaultMapRunner when unset.
  MapRunnerFactory map_runner_factory;

 private:
  std::map<std::string, std::string> conf_;
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_JOB_CONF_H_
