#ifndef CLYDESDALE_MAPREDUCE_JOB_RUNNER_H_
#define CLYDESDALE_MAPREDUCE_JOB_RUNNER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "mapreduce/input_format.h"
#include "mapreduce/job_conf.h"
#include "mapreduce/job_report.h"
#include "mapreduce/output_format.h"
#include "mapreduce/scheduler.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/straggler.h"
#include "mapreduce/task_attempt.h"
#include "obs/mem_tracker.h"
#include "obs/trace.h"

namespace clydesdale {
namespace mr {

class ClusterMetrics;
class JobHistoryRecorder;
class MrCluster;

/// Thread-safe counting collector for records that go straight to the job's
/// OutputFormat (map-only map output, reduce output).
class OutputFormatCollector final : public OutputCollector {
 public:
  explicit OutputFormatCollector(OutputFormat* out) : out_(out) {}

  Status Collect(const Row& key, const Row& value) override {
    records_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(EncodedKeyValueBytes(key, value),
                     std::memory_order_relaxed);
    return out_->Write(key, value);
  }

  uint64_t records() const { return records_.load(std::memory_order_relaxed); }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  OutputFormat* out_;
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> bytes_{0};
};

/// Drives one job over the cluster's TaskTracker pools. Where the old engine
/// pushed a precomputed placement onto per-node queues, the runner exposes a
/// pull API: a tracker slot that frees up asks "anything runnable for me?"
/// and the scheduling policy answers with a late-binding locality-aware
/// choice. Map completions publish shuffle runs immediately, so reducers
/// (claimed by reduce slots from the start when pipelined_shuffle is on)
/// fetch and merge completed runs while the remaining maps run.
///
/// Held as shared_ptr: trackers keep the runner alive while any of its
/// attempts is in flight, even after Execute returned the job's result.
class JobRunner {
 public:
  /// `metrics` (optional) receives live slot/queue/outcome updates;
  /// `history` (optional) receives every attempt state transition. Both may
  /// be null independently of each other.
  JobRunner(MrCluster* cluster, const JobConf* conf, int64_t instance,
            std::vector<std::shared_ptr<InputSplit>> splits,
            InputFormat* input_format, OutputFormat* output_format,
            JobReport* report, obs::TraceRecorder* trace,
            ClusterMetrics* metrics = nullptr,
            JobHistoryRecorder* history = nullptr);

  // --- tracker pull API -----------------------------------------------------
  /// Would TryRunWork from this (node, slot kind) claim an attempt now?
  /// Called by tracker workers under the tracker lock (lock order: tracker
  /// before runner).
  bool HasRunnableWork(hdfs::NodeId node, bool reduce_slot) const;

  /// Claims the next runnable attempt for the slot and runs it to a terminal
  /// state on the calling thread. Returns false when nothing was claimable
  /// (lost a race or no eligible work).
  bool TryRunWork(hdfs::NodeId node, bool reduce_slot);

  // --- driver API -----------------------------------------------------------
  /// Attaches the runner to every tracker, waits for all attempts to reach a
  /// terminal state, detaches, and moves per-task reports into the job
  /// report. `self` must own this runner. Returns the first task failure
  /// (with "<job> map task N" context) or OK.
  Status Execute(const std::shared_ptr<JobRunner>& self);

  /// MetricsPoller probe: sweeps running attempts through the online
  /// straggler detector, flagging (once, edge-triggered) any attempt whose
  /// elapsed time exceeds the policy threshold times the running median of
  /// completed same-phase attempts. Updates the straggler gauge/counter,
  /// the STRAGGLER_ATTEMPTS job counter, and the history log.
  void PollLiveMetrics();

  const StragglerDetector& straggler_detector() const { return straggler_; }

  /// The job's per-node MemTrackers ("job<I>@node<N>", children of the
  /// cluster's node trackers, limited by JobConf::mem_budget_bytes), indexed
  /// by NodeId. Empty when obs.mem.enabled is off. The engine's poller
  /// samples these into the cly_mem_job_* gauges and its counter flush reads
  /// their peaks at job end.
  const std::vector<std::shared_ptr<obs::MemTracker>>& job_mem_trackers()
      const {
    return job_mem_trackers_;
  }

 private:
  TaskAttempt* ClaimLocked(hdfs::NodeId node, bool reduce_slot);
  std::vector<bool> SaturationLocked() const;
  Status RunMapAttempt(TaskAttempt* attempt);
  Status RunReduceAttempt(TaskAttempt* attempt);
  void FinishAttempt(TaskAttempt* attempt, Status status);
  bool aborted() const;

  MrCluster* const cluster_;
  const JobConf* const conf_;
  const int64_t instance_;
  const std::vector<std::shared_ptr<InputSplit>> splits_;
  InputFormat* const input_format_;
  OutputFormat* const output_format_;
  JobReport* const report_;
  obs::TraceRecorder* const trace_;
  ClusterMetrics* const metrics_;
  JobHistoryRecorder* const history_;
  /// The runner's own clock: attempt start/elapsed times for the straggler
  /// probe (same timebase for claim and poll).
  const Stopwatch clock_;

  const int num_reduces_;
  const bool map_only_;
  const bool pipelined_;
  /// Concurrent map attempts allowed per node (1 for single_task_per_node
  /// jobs, which hand all slots to the one task as threads).
  const int map_cap_per_node_;
  const int task_threads_;

  /// Per-node job trackers; populated in the ctor body (obs.mem.enabled),
  /// and handed to shuffle_ as shared_ptr copies, so declaration order
  /// relative to shuffle_ does not matter.
  std::vector<std::shared_ptr<obs::MemTracker>> job_mem_trackers_;

  ShuffleStore shuffle_;
  OutputFormatCollector direct_out_;

  StragglerDetector straggler_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  MapSchedulingPolicy policy_;
  std::vector<std::unique_ptr<TaskAttempt>> map_attempts_;
  std::vector<std::unique_ptr<TaskAttempt>> reduce_attempts_;
  std::vector<int> running_maps_;  ///< per node
  int maps_unfinished_;
  int reduces_unfinished_;
  bool aborted_ = false;
  Status first_failure_ = Status::OK();
  std::string first_failure_context_;
};

}  // namespace mr
}  // namespace clydesdale

#endif  // CLYDESDALE_MAPREDUCE_JOB_RUNNER_H_
