#include "mapreduce/output_format.h"

#include "common/strings.h"
#include "mapreduce/engine.h"

namespace clydesdale {
namespace mr {

Result<SchemaPtr> ParseColumnsDecl(const std::string& decl) {
  if (decl.empty()) {
    return Status::InvalidArgument("output.columns is not set");
  }
  std::vector<Field> fields;
  for (const std::string& item : StrSplit(decl, ',')) {
    const std::vector<std::string> parts = StrSplit(item, ':');
    if (parts.size() != 2) {
      return Status::InvalidArgument(
          StrCat("bad column declaration: '", item, "'"));
    }
    TypeKind type;
    if (parts[1] == "int32") {
      type = TypeKind::kInt32;
    } else if (parts[1] == "int64") {
      type = TypeKind::kInt64;
    } else if (parts[1] == "double") {
      type = TypeKind::kDouble;
    } else if (parts[1] == "string") {
      type = TypeKind::kString;
    } else {
      return Status::InvalidArgument(StrCat("bad column type: '", parts[1], "'"));
    }
    fields.push_back(Field{parts[0], type, 0});
  }
  return Schema::Make(std::move(fields));
}

// --- MemoryOutputFormat ------------------------------------------------------

Status MemoryOutputFormat::Open(MrCluster*, const JobConf&) {
  return Status::OK();
}

Status MemoryOutputFormat::Write(const Row& key, const Row& value) {
  Row combined = key;
  combined.Extend(value);
  std::lock_guard<std::mutex> lock(mu_);
  rows_.push_back(std::move(combined));
  return Status::OK();
}

Status MemoryOutputFormat::Commit(MrCluster*, const JobConf&) {
  return Status::OK();
}

std::vector<Row> MemoryOutputFormat::TakeRows() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(rows_);
}

// --- TableOutputFormat -------------------------------------------------------

Status TableOutputFormat::Open(MrCluster*, const JobConf& conf) {
  const std::string table = conf.Get(kConfOutputTable);
  if (table.empty()) {
    return Status::InvalidArgument("output.table is not set");
  }
  // Validate the declaration early so misconfiguration fails before work.
  return ParseColumnsDecl(conf.Get(kConfOutputColumns)).status();
}

Status TableOutputFormat::Write(const Row& key, const Row& value) {
  Row combined = key;
  combined.Extend(value);
  std::lock_guard<std::mutex> lock(mu_);
  rows_.push_back(std::move(combined));
  return Status::OK();
}

Status TableOutputFormat::Commit(MrCluster* cluster, const JobConf& conf) {
  CLY_ASSIGN_OR_RETURN(SchemaPtr schema,
                       ParseColumnsDecl(conf.Get(kConfOutputColumns)));
  storage::TableDesc desc;
  desc.path = conf.Get(kConfOutputTable);
  desc.format = conf.Get(kConfOutputFormat, storage::kFormatBinaryRow);
  desc.schema = schema;
  desc.rows_per_split = static_cast<uint64_t>(
      conf.GetInt("output.rows_per_split", 64 * 1024));

  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows = std::move(rows_);
  }
  CLY_ASSIGN_OR_RETURN(std::unique_ptr<storage::TableWriter> writer,
                       storage::OpenTableWriter(cluster->dfs(), desc));
  for (const Row& row : rows) {
    if (row.size() != schema->num_fields()) {
      return Status::Internal(
          StrCat("output row arity ", row.size(), " != declared ",
                 schema->num_fields()));
    }
    CLY_RETURN_IF_ERROR(writer->Append(row));
  }
  CLY_RETURN_IF_ERROR(writer->Close());
  cluster->InvalidateTable(desc.path);
  return Status::OK();
}

}  // namespace mr
}  // namespace clydesdale
