#include "mapreduce/input_format.h"

#include <algorithm>
#include <map>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "mapreduce/engine.h"
#include "obs/query_profile.h"

namespace clydesdale {
namespace mr {

namespace {

/// Reads the constituents of a split one after another, as the stock Hadoop
/// record loop would (a single, serialized stream).
class ConcatRecordReader final : public RecordReader {
 public:
  ConcatRecordReader(std::vector<std::unique_ptr<RecordReader>> readers)
      : readers_(std::move(readers)) {}

  Result<bool> Next(Row* key, Row* value) override {
    while (current_ < readers_.size()) {
      CLY_ASSIGN_OR_RETURN(bool more, readers_[current_]->Next(key, value));
      if (more) return true;
      ++current_;
    }
    return false;
  }

 private:
  std::vector<std::unique_ptr<RecordReader>> readers_;
  size_t current_ = 0;
};

/// Adapts a storage RowReader to the MapReduce record model.
class TableRecordReader final : public RecordReader {
 public:
  TableRecordReader(std::unique_ptr<storage::RowReader> reader, int32_t tag)
      : reader_(std::move(reader)), tag_(tag) {}

  Result<bool> Next(Row* key, Row* value) override {
    CLY_ASSIGN_OR_RETURN(bool more, reader_->Next(&scratch_));
    if (!more) return false;
    key->Clear();
    if (tag_ >= 0) {
      value->Clear();
      value->Reserve(scratch_.size() + 1);
      value->Append(Value(tag_));
      value->Extend(scratch_);
    } else {
      *value = std::move(scratch_);
    }
    return true;
  }

 private:
  std::unique_ptr<storage::RowReader> reader_;
  int32_t tag_;
  Row scratch_;
};

Result<std::vector<std::shared_ptr<InputSplit>>> SplitsForTable(
    MrCluster* cluster, const std::string& table_path) {
  CLY_ASSIGN_OR_RETURN(storage::TableDesc desc, cluster->GetTable(table_path));
  CLY_ASSIGN_OR_RETURN(std::vector<storage::StorageSplit> splits,
                       storage::ListTableSplits(*cluster->dfs(), desc));
  std::vector<std::shared_ptr<InputSplit>> out;
  out.reserve(splits.size());
  for (storage::StorageSplit& s : splits) {
    out.push_back(std::make_shared<StorageInputSplit>(std::move(s)));
  }
  return out;
}

Result<std::unique_ptr<RecordReader>> ReaderForStorageSplit(
    MrCluster* cluster, const JobConf& conf,
    const storage::StorageSplit& split, TaskContext* context, int32_t tag) {
  CLY_ASSIGN_OR_RETURN(storage::TableDesc desc,
                       cluster->GetTable(split.table_path));
  storage::ScanOptions options;
  options.projection = conf.GetList(kConfInputProjection);
  options.reader_node = context->node();
  options.stats = context->io_stats();
  options.scan_spec = conf.scan_spec;
  options.late_materialize = conf.GetBool(kConfCifLateMaterialize, true);
  options.prefetch = conf.GetBool(kConfCifPrefetch, false);
  // Charge decode arenas to the attempt's tracker; the shared_ptr-deleter
  // wrapper keeps the charge alive exactly as long as the arena itself, even
  // when a prefetched block outlives this reader.
  options.mem_reporter = context->mem_tracker();
  // CIF splits load eagerly at open, so the stack-local stats are complete
  // (and safe to drop) as soon as the reader exists.
  storage::ScanStats scan_stats;
  options.scan_stats = &scan_stats;
  const bool profiled = context->profile_enabled();
  const int64_t cpu0 = profiled ? obs::ThreadCpuNanos() : 0;
  Stopwatch open_timer;
  CLY_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::RowReader> reader,
      storage::OpenSplitRowReader(*cluster->dfs(), desc, split, options));
  AddCifScanCounters(scan_stats, context->counters());
  if (profiled) {
    // The open-time window covers the whole CIF load (eager decode); for
    // row-format tables that stream through Next(), the node still pins the
    // scan in the plan tree even though its timings stay near zero.
    context->AddProfileOperator(ScanProfileNode(
        StrCat("scan:", split.table_path), scan_stats,
        static_cast<uint64_t>(open_timer.ElapsedNanos()),
        static_cast<uint64_t>(obs::ThreadCpuNanos() - cpu0)));
  }
  return std::unique_ptr<RecordReader>(
      new TableRecordReader(std::move(reader), tag));
}

}  // namespace

// --- TableInputFormat --------------------------------------------------------

Result<std::vector<std::shared_ptr<InputSplit>>> TableInputFormat::GetSplits(
    MrCluster* cluster, const JobConf& conf) {
  const std::string table = conf.Get(kConfInputTable);
  if (table.empty()) {
    return Status::InvalidArgument("input.table is not set");
  }
  return SplitsForTable(cluster, table);
}

Result<std::unique_ptr<RecordReader>> TableInputFormat::CreateReader(
    MrCluster* cluster, const JobConf& conf, const InputSplit& split,
    TaskContext* context) {
  std::vector<std::unique_ptr<RecordReader>> readers;
  for (const storage::StorageSplit* s : split.Constituents()) {
    CLY_ASSIGN_OR_RETURN(
        std::unique_ptr<RecordReader> r,
        ReaderForStorageSplit(cluster, conf, *s, context, /*tag=*/-1));
    readers.push_back(std::move(r));
  }
  return std::unique_ptr<RecordReader>(
      new ConcatRecordReader(std::move(readers)));
}

Result<std::unique_ptr<RecordReader>> TableInputFormat::CreateConstituentReader(
    MrCluster* cluster, const JobConf& conf,
    const storage::StorageSplit& split, TaskContext* context) {
  return ReaderForStorageSplit(cluster, conf, split, context, /*tag=*/-1);
}

// --- MultiCifInputFormat -----------------------------------------------------

Result<std::vector<std::shared_ptr<InputSplit>>> MultiCifInputFormat::GetSplits(
    MrCluster* cluster, const JobConf& conf) {
  const std::string table = conf.Get(kConfInputTable);
  if (table.empty()) {
    return Status::InvalidArgument("input.table is not set");
  }
  CLY_ASSIGN_OR_RETURN(storage::TableDesc desc, cluster->GetTable(table));
  if (desc.format != storage::kFormatCif) {
    return Status::InvalidArgument(
        StrCat("MultiCIF requires a CIF table; ", table, " is ", desc.format));
  }
  CLY_ASSIGN_OR_RETURN(std::vector<storage::StorageSplit> splits,
                       storage::ListTableSplits(*cluster->dfs(), desc));

  // Bucket splits by their first preferred node, then pack each bucket into
  // multi-splits of the configured size (0 = the whole bucket at once, i.e.
  // one map task per node).
  std::map<hdfs::NodeId, std::vector<storage::StorageSplit>> buckets;
  for (storage::StorageSplit& s : splits) {
    const hdfs::NodeId home =
        s.preferred_nodes.empty() ? hdfs::kNoNode : s.preferred_nodes[0];
    buckets[home].push_back(std::move(s));
  }
  const int64_t pack = conf.GetInt(kConfMultiSplitSize, 0);
  std::vector<std::shared_ptr<InputSplit>> out;
  for (auto& [node, bucket] : buckets) {
    const size_t group = pack <= 0 ? bucket.size() : static_cast<size_t>(pack);
    for (size_t start = 0; start < bucket.size(); start += group) {
      const size_t end = std::min(bucket.size(), start + group);
      std::vector<storage::StorageSplit> chunk(
          std::make_move_iterator(bucket.begin() + static_cast<long>(start)),
          std::make_move_iterator(bucket.begin() + static_cast<long>(end)));
      std::vector<hdfs::NodeId> locations;
      if (node != hdfs::kNoNode) locations.push_back(node);
      out.push_back(std::make_shared<MultiSplit>(std::move(chunk),
                                                 std::move(locations)));
    }
  }
  return out;
}

Result<std::unique_ptr<RecordReader>> MultiCifInputFormat::CreateReader(
    MrCluster* cluster, const JobConf& conf, const InputSplit& split,
    TaskContext* context) {
  std::vector<std::unique_ptr<RecordReader>> readers;
  for (const storage::StorageSplit* s : split.Constituents()) {
    CLY_ASSIGN_OR_RETURN(
        std::unique_ptr<RecordReader> r,
        ReaderForStorageSplit(cluster, conf, *s, context, /*tag=*/-1));
    readers.push_back(std::move(r));
  }
  return std::unique_ptr<RecordReader>(
      new ConcatRecordReader(std::move(readers)));
}

Result<std::unique_ptr<RecordReader>>
MultiCifInputFormat::CreateConstituentReader(MrCluster* cluster,
                                             const JobConf& conf,
                                             const storage::StorageSplit& split,
                                             TaskContext* context) {
  return ReaderForStorageSplit(cluster, conf, split, context, /*tag=*/-1);
}

// --- MultiTableInputFormat ---------------------------------------------------

Result<std::vector<std::shared_ptr<InputSplit>>>
MultiTableInputFormat::GetSplits(MrCluster* cluster, const JobConf& conf) {
  const std::vector<std::string> tables = conf.GetList(kConfInputTables);
  if (tables.empty()) {
    return Status::InvalidArgument("input.tables is not set");
  }
  std::vector<std::shared_ptr<InputSplit>> out;
  for (const std::string& table : tables) {
    CLY_ASSIGN_OR_RETURN(std::vector<std::shared_ptr<InputSplit>> splits,
                         SplitsForTable(cluster, table));
    out.insert(out.end(), splits.begin(), splits.end());
  }
  return out;
}

Result<std::unique_ptr<RecordReader>> MultiTableInputFormat::CreateReader(
    MrCluster* cluster, const JobConf& conf, const InputSplit& split,
    TaskContext* context) {
  std::vector<std::unique_ptr<RecordReader>> readers;
  for (const storage::StorageSplit* s : split.Constituents()) {
    CLY_ASSIGN_OR_RETURN(
        std::unique_ptr<RecordReader> r,
        CreateConstituentReader(cluster, conf, *s, context));
    readers.push_back(std::move(r));
  }
  return std::unique_ptr<RecordReader>(
      new ConcatRecordReader(std::move(readers)));
}

Result<std::unique_ptr<RecordReader>>
MultiTableInputFormat::CreateConstituentReader(
    MrCluster* cluster, const JobConf& conf,
    const storage::StorageSplit& split, TaskContext* context) {
  const std::vector<std::string> tables = conf.GetList(kConfInputTables);
  int32_t tag = -1;
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i] == split.table_path) {
      tag = static_cast<int32_t>(i);
      break;
    }
  }
  if (tag < 0) {
    return Status::InvalidArgument(
        StrCat("split table ", split.table_path, " not in input.tables"));
  }
  // Projection lists are per-table for multi-table scans: the conf key is
  // "input.projection.<ordinal>".
  JobConf per_table = conf;
  per_table.Set(kConfInputProjection,
                conf.Get(StrCat(kConfInputProjection, ".", tag)));
  return ReaderForStorageSplit(cluster, per_table, split, context, tag);
}

}  // namespace mr
}  // namespace clydesdale
