#include "mapreduce/task_attempt.h"

#include "common/strings.h"

namespace clydesdale {
namespace mr {

const char* AttemptStateName(AttemptState state) {
  switch (state) {
    case AttemptState::kQueued:
      return "queued";
    case AttemptState::kRunning:
      return "running";
    case AttemptState::kSucceeded:
      return "succeeded";
    case AttemptState::kFailed:
      return "failed";
  }
  return "unknown";
}

Status TaskAttempt::Transition(AttemptState next) {
  const bool valid =
      (state_ == AttemptState::kQueued && next == AttemptState::kRunning) ||
      (state_ == AttemptState::kQueued && next == AttemptState::kFailed) ||
      (state_ == AttemptState::kRunning && next == AttemptState::kSucceeded) ||
      (state_ == AttemptState::kRunning && next == AttemptState::kFailed);
  if (!valid) {
    return Status::Internal(StrCat("invalid attempt transition for ", Label(),
                                   ": ", AttemptStateName(state_), " -> ",
                                   AttemptStateName(next)));
  }
  state_ = next;
  return Status::OK();
}

std::string TaskAttempt::Label() const {
  return StrCat(is_map_ ? "m" : "r", "-", task_index_, ".", attempt_);
}

}  // namespace mr
}  // namespace clydesdale
