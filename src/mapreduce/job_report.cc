#include "mapreduce/job_report.h"

#include "common/strings.h"
#include "mapreduce/job_trace.h"

namespace clydesdale {
namespace mr {

uint64_t JobReport::TotalMapInputBytes() const {
  uint64_t total = 0;
  for (const TaskReport& t : map_tasks) {
    total += t.hdfs_local_bytes + t.hdfs_remote_bytes;
  }
  return total;
}

uint64_t JobReport::TotalShuffleBytes() const {
  uint64_t total = 0;
  for (const TaskReport& t : reduce_tasks) total += t.shuffle_bytes_total;
  return total;
}

uint64_t JobReport::TotalOutputRecords() const {
  uint64_t total = 0;
  const auto& tasks = reduce_tasks.empty() ? map_tasks : reduce_tasks;
  for (const TaskReport& t : tasks) total += t.output_records;
  return total;
}

int JobReport::DataLocalMaps() const {
  int n = 0;
  for (const TaskReport& t : map_tasks) n += t.data_local ? 1 : 0;
  return n;
}

namespace {

/// " name p50/p95/p99=a/b/c<unit>" or "" when the histogram is absent.
std::string PercentileTriple(const obs::HistogramRegistry& histograms,
                             const char* name, const char* label,
                             const char* unit) {
  const obs::Histogram* h = histograms.Find(name);
  if (h == nullptr || h->Count() == 0) return "";
  return StrCat(", ", label, " p50/p95/p99=", h->Percentile(0.50), "/",
                h->Percentile(0.95), "/", h->Percentile(0.99), unit);
}

}  // namespace

std::string JobReport::Summary() const {
  return StrCat(job_name, ": ", map_tasks.size(), " map / ",
                reduce_tasks.size(), " reduce tasks, input ",
                HumanBytes(TotalMapInputBytes()), ", shuffle ",
                HumanBytes(TotalShuffleBytes()), ", ", DataLocalMaps(),
                " data-local maps",
                PercentileTriple(histograms, kHistMapTaskMicros, "map", "us"),
                PercentileTriple(histograms, kHistShuffleFetchBytes,
                                 "shuffle-fetch", "B"),
                ", ", FormatDouble(wall_seconds, 3), "s");
}

}  // namespace mr
}  // namespace clydesdale
