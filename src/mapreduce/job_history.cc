#include "mapreduce/job_history.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <tuple>
#include <utility>

#include "common/strings.h"
#include "obs/json_util.h"
#include "obs/query_profile.h"

namespace clydesdale {
namespace mr {

namespace {

using obs::JsonDouble;
using obs::JsonQuote;

/// One parsed flat JSON object: string/number/bool members plus at most one
/// level of nesting for the "counters" map. Numbers keep their raw token so
/// int64 and %.17g doubles both round-trip without loss.
struct HistoryEvent {
  std::map<std::string, std::string> strings;
  std::map<std::string, std::string> numbers;  // raw tokens
  std::map<std::string, bool> bools;
  std::map<std::string, int64_t> counters;

  const std::string* FindString(const std::string& key) const {
    auto it = strings.find(key);
    return it == strings.end() ? nullptr : &it->second;
  }
  int64_t Int(const std::string& key, int64_t fallback = 0) const {
    auto it = numbers.find(key);
    return it == numbers.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }
  double Double(const std::string& key, double fallback = 0) const {
    auto it = numbers.find(key);
    return it == numbers.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }
};

void SkipSpace(std::string_view s, size_t* pos) {
  while (*pos < s.size() && (s[*pos] == ' ' || s[*pos] == '\t')) ++(*pos);
}

bool ParseJsonString(std::string_view s, size_t* pos, std::string* out) {
  if (*pos >= s.size() || s[*pos] != '"') return false;
  ++(*pos);
  out->clear();
  while (*pos < s.size()) {
    char c = s[*pos];
    if (c == '"') {
      ++(*pos);
      return true;
    }
    if (c == '\\') {
      if (*pos + 1 >= s.size()) return false;
      char esc = s[*pos + 1];
      *pos += 2;
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (*pos + 4 > s.size()) return false;
          const std::string hex(s.substr(*pos, 4));
          *pos += 4;
          *out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          break;
        }
        default:
          return false;
      }
      continue;
    }
    *out += c;
    ++(*pos);
  }
  return false;  // unterminated
}

bool ParseNumberToken(std::string_view s, size_t* pos, std::string* out) {
  out->clear();
  while (*pos < s.size()) {
    char c = s[*pos];
    if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
        c == 'e' || c == 'E') {
      *out += c;
      ++(*pos);
    } else {
      break;
    }
  }
  return !out->empty();
}

/// Parses `{"k":v,...}` where v is a string, number, true/false, or (one
/// level deep) an object of integer members. Tolerant of trailing content.
bool ParseEvent(std::string_view line, HistoryEvent* out) {
  size_t pos = 0;
  SkipSpace(line, &pos);
  if (pos >= line.size() || line[pos] != '{') return false;
  ++pos;
  while (true) {
    SkipSpace(line, &pos);
    if (pos < line.size() && line[pos] == '}') return true;
    std::string key;
    if (!ParseJsonString(line, &pos, &key)) return false;
    SkipSpace(line, &pos);
    if (pos >= line.size() || line[pos] != ':') return false;
    ++pos;
    SkipSpace(line, &pos);
    if (pos >= line.size()) return false;
    char c = line[pos];
    if (c == '"') {
      std::string value;
      if (!ParseJsonString(line, &pos, &value)) return false;
      out->strings[key] = std::move(value);
    } else if (c == 't' || c == 'f') {
      const bool value = (c == 't');
      pos += value ? 4 : 5;
      if (pos > line.size()) return false;
      out->bools[key] = value;
    } else if (c == '{') {
      ++pos;
      while (true) {
        SkipSpace(line, &pos);
        if (pos < line.size() && line[pos] == '}') {
          ++pos;
          break;
        }
        std::string nested_key, token;
        if (!ParseJsonString(line, &pos, &nested_key)) return false;
        SkipSpace(line, &pos);
        if (pos >= line.size() || line[pos] != ':') return false;
        ++pos;
        SkipSpace(line, &pos);
        if (!ParseNumberToken(line, &pos, &token)) return false;
        out->counters[nested_key] = std::strtoll(token.c_str(), nullptr, 10);
        SkipSpace(line, &pos);
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
    } else {
      std::string token;
      if (!ParseNumberToken(line, &pos, &token)) return false;
      out->numbers[key] = std::move(token);
    }
    SkipSpace(line, &pos);
    if (pos < line.size() && line[pos] == ',') {
      ++pos;
      continue;
    }
    if (pos < line.size() && line[pos] == '}') return true;
    return false;
  }
}

/// Span categories must outlive the report (SpanRecord holds const char*),
/// so reconstructed spans map onto the same static literals the live
/// recorder uses.
const char* InternCategory(const std::string& category) {
  if (category == "overlap") return "overlap";
  if (category == "job") return "job";
  return "phase";
}

}  // namespace

std::string JobHistoryPath(int64_t instance) {
  return StrCat("/history/", instance, ".jsonl");
}

JobHistoryRecorder::JobHistoryRecorder(std::string job_name, int64_t instance)
    : job_name_(std::move(job_name)), instance_(instance) {}

void JobHistoryRecorder::Append(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(line));
}

void JobHistoryRecorder::RecordJobSubmitted(int num_nodes, int num_maps,
                                            int num_reduces) {
  Append(StrCat("{\"event\":\"job_submitted\",\"t_us\":", NowMicros(),
                ",\"job\":", JsonQuote(job_name_),
                ",\"instance\":", instance_, ",\"num_nodes\":", num_nodes,
                ",\"num_maps\":", num_maps, ",\"num_reduces\":", num_reduces,
                "}"));
}

void JobHistoryRecorder::RecordAttemptRunning(bool is_map, int task,
                                              int attempt, int node) {
  Append(StrCat("{\"event\":\"attempt\",\"t_us\":", NowMicros(),
                ",\"state\":\"running\",\"kind\":\"",
                is_map ? "map" : "reduce", "\",\"task\":", task,
                ",\"attempt\":", attempt, ",\"node\":", node, "}"));
}

void JobHistoryRecorder::RecordAttemptFinished(const TaskReport& report,
                                               const char* state,
                                               const std::string& status_msg) {
  std::string line = StrCat(
      "{\"event\":\"attempt\",\"t_us\":", NowMicros(), ",\"state\":\"", state,
      "\",\"kind\":\"", report.is_map ? "map" : "reduce",
      "\",\"task\":", report.index, ",\"attempt\":", report.attempt,
      ",\"node\":", report.node);
  if (!status_msg.empty()) {
    line += StrCat(",\"status\":", JsonQuote(status_msg));
  }
  line += StrCat(
      ",\"hdfs_local_bytes\":", report.hdfs_local_bytes,
      ",\"hdfs_remote_bytes\":", report.hdfs_remote_bytes,
      ",\"local_disk_bytes\":", report.local_disk_bytes,
      ",\"input_records\":", report.input_records,
      ",\"output_records\":", report.output_records,
      ",\"output_bytes\":", report.output_bytes,
      ",\"shuffle_bytes_total\":", report.shuffle_bytes_total,
      ",\"shuffle_bytes_remote\":", report.shuffle_bytes_remote,
      ",\"data_local\":", report.data_local ? "true" : "false",
      ",\"num_constituents\":", report.num_constituents,
      ",\"wall_seconds\":", JsonDouble(report.wall_seconds), "}");
  Append(std::move(line));
}

void JobHistoryRecorder::RecordStraggler(const StragglerFlag& flag) {
  Append(StrCat("{\"event\":\"straggler\",\"t_us\":", NowMicros(),
                ",\"kind\":\"", flag.is_map ? "map" : "reduce",
                "\",\"task\":", flag.task, ",\"attempt\":", flag.attempt,
                ",\"node\":", flag.node, ",\"elapsed_us\":", flag.elapsed_us,
                ",\"median_us\":", flag.median_us, "}"));
}

void JobHistoryRecorder::RecordCountersSnapshot(const std::string& label,
                                                const Counters& counters) {
  std::string line = StrCat("{\"event\":\"counters\",\"t_us\":", NowMicros(),
                            ",\"label\":", JsonQuote(label), ",\"counters\":{");
  bool first = true;
  for (const auto& [name, value] : counters.Snapshot()) {
    if (!first) line += ",";
    first = false;
    line += StrCat(JsonQuote(name), ":", value);
  }
  line += "}}";
  Append(std::move(line));
}

void JobHistoryRecorder::RecordPhase(const std::string& name,
                                     const std::string& category,
                                     int64_t start_us, int64_t dur_us) {
  Append(StrCat("{\"event\":\"phase\",\"name\":", JsonQuote(name),
                ",\"category\":", JsonQuote(category),
                ",\"start_us\":", start_us, ",\"dur_us\":", dur_us, "}"));
}

void JobHistoryRecorder::RecordJobFinished(const Status& status,
                                           const JobReport& report) {
  RecordCountersSnapshot("final", report.counters);
  // Per-operator profile, flattened pre-order with '>'-joined paths: one
  // event per node plus the attempt-span envelope, enough for
  // ReconstructJobReport to rebuild the exact tree (wall_seconds is
  // recovered from the job_finished line).
  if (!report.profile.empty()) {
    for (const obs::FlatProfileNode& flat :
         obs::FlattenProfile(report.profile)) {
      const obs::OperatorProfile& n = *flat.node;
      std::string line =
          StrCat("{\"event\":\"profile\",\"path\":", JsonQuote(flat.path),
                 ",\"kind\":", JsonQuote(n.kind), ",\"rows_in\":", n.rows_in,
                 ",\"rows_out\":", n.rows_out, ",\"batches\":", n.batches,
                 ",\"wall_ns\":", n.wall_ns, ",\"wall_max_ns\":", n.wall_max_ns,
                 ",\"cpu_ns\":", n.cpu_ns, ",\"bytes_decoded\":",
                 n.bytes_decoded, ",\"bytes_raw\":", n.bytes_raw,
                 ",\"blocks_skipped\":", n.blocks_skipped,
                 ",\"rows_pruned\":", n.rows_pruned);
      for (int i = 0; i < 6; ++i) {
        line += StrCat(",\"enc", i, "\":", n.blocks_by_encoding[i]);
      }
      line += StrCat(",\"prefetch_hits\":", n.prefetch_hits,
                     ",\"prefetch_misses\":", n.prefetch_misses,
                     ",\"prefetch_wait_ns\":", n.prefetch_wait_ns,
                     ",\"mem_current_bytes\":", n.mem_current_bytes,
                     ",\"mem_peak_bytes\":", n.mem_peak_bytes,
                     ",\"tasks\":", n.tasks, "}");
      Append(std::move(line));
    }
    Append(StrCat("{\"event\":\"profile_span\",\"first_start_us\":",
                  report.profile.first_start_us,
                  ",\"last_end_us\":", report.profile.last_end_us, "}"));
  }
  Append(StrCat("{\"event\":\"job_finished\",\"t_us\":", NowMicros(),
                ",\"ok\":", status.ok() ? "true" : "false",
                ",\"status\":", JsonQuote(status.ToString()),
                ",\"job\":", JsonQuote(report.job_name),
                ",\"num_nodes\":", report.num_nodes,
                ",\"wall_seconds\":", JsonDouble(report.wall_seconds), "}"));
}

size_t JobHistoryRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string JobHistoryRecorder::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::string& event : events_) {
    out += event;
    out += '\n';
  }
  return out;
}

Status WriteJobHistory(hdfs::LocalStore* store,
                       const JobHistoryRecorder& recorder) {
  const std::string doc = recorder.Serialize();
  return store->Write(JobHistoryPath(recorder.instance()),
                      std::vector<uint8_t>(doc.begin(), doc.end()));
}

Result<std::string> ReadJobHistory(hdfs::LocalStore* store, int64_t instance) {
  auto bytes = store->Read(JobHistoryPath(instance));
  if (!bytes.ok()) return bytes.status();
  const hdfs::BlockBuffer& buffer = *bytes;  // shared_ptr<const vector<u8>>
  return std::string(buffer->begin(), buffer->end());
}

Result<JobReport> ReconstructJobReport(std::string_view jsonl) {
  JobReport report;
  bool saw_job_event = false;
  size_t line_no = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string_view::npos) end = jsonl.size();
    const std::string_view line = jsonl.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;
    HistoryEvent event;
    if (!ParseEvent(line, &event)) {
      return Status::InvalidArgument(
          StrCat("job history: malformed event at line ", line_no));
    }
    const std::string* kind = event.FindString("event");
    if (kind == nullptr) {
      return Status::InvalidArgument(
          StrCat("job history: event without type at line ", line_no));
    }
    if (*kind == "job_submitted") {
      saw_job_event = true;
      if (const std::string* job = event.FindString("job")) {
        report.job_name = *job;
      }
      report.num_nodes = static_cast<int>(event.Int("num_nodes"));
    } else if (*kind == "attempt") {
      const std::string* state = event.FindString("state");
      if (state == nullptr || *state != "succeeded") continue;
      TaskReport task;
      const std::string* task_kind = event.FindString("kind");
      task.is_map = (task_kind == nullptr || *task_kind == "map");
      task.index = static_cast<int>(event.Int("task"));
      task.attempt = static_cast<int>(event.Int("attempt"));
      task.node = static_cast<hdfs::NodeId>(event.Int("node"));
      task.hdfs_local_bytes = event.Int("hdfs_local_bytes");
      task.hdfs_remote_bytes = event.Int("hdfs_remote_bytes");
      task.local_disk_bytes = event.Int("local_disk_bytes");
      task.input_records = event.Int("input_records");
      task.output_records = event.Int("output_records");
      task.output_bytes = event.Int("output_bytes");
      task.shuffle_bytes_total = event.Int("shuffle_bytes_total");
      task.shuffle_bytes_remote = event.Int("shuffle_bytes_remote");
      auto data_local = event.bools.find("data_local");
      task.data_local = data_local != event.bools.end() && data_local->second;
      task.num_constituents = static_cast<int>(event.Int("num_constituents", 1));
      task.wall_seconds = event.Double("wall_seconds");
      (task.is_map ? report.map_tasks : report.reduce_tasks)
          .push_back(std::move(task));
    } else if (*kind == "counters") {
      // Snapshots are cumulative; the last one ("final") wins.
      Counters counters;
      for (const auto& [name, value] : event.counters) {
        counters.Set(name, value);
      }
      report.counters = std::move(counters);
    } else if (*kind == "phase") {
      obs::SpanRecord span;
      if (const std::string* name = event.FindString("name")) {
        span.name = *name;
      }
      const std::string* category = event.FindString("category");
      span.category = InternCategory(category == nullptr ? "" : *category);
      span.start_us = event.Int("start_us");
      span.dur_us = event.Int("dur_us");
      report.spans.push_back(std::move(span));
    } else if (*kind == "profile") {
      const std::string* path = event.FindString("path");
      if (path == nullptr) {
        return Status::InvalidArgument(StrCat(
            "job history: profile event without path at line ", line_no));
      }
      obs::OperatorProfile* node =
          obs::EnsureProfilePath(&report.profile, *path);
      if (const std::string* op_kind = event.FindString("kind")) {
        node->kind = *op_kind;
      }
      node->rows_in = static_cast<uint64_t>(event.Int("rows_in"));
      node->rows_out = static_cast<uint64_t>(event.Int("rows_out"));
      node->batches = static_cast<uint64_t>(event.Int("batches"));
      node->wall_ns = static_cast<uint64_t>(event.Int("wall_ns"));
      node->wall_max_ns = static_cast<uint64_t>(event.Int("wall_max_ns"));
      node->cpu_ns = static_cast<uint64_t>(event.Int("cpu_ns"));
      node->bytes_decoded = static_cast<uint64_t>(event.Int("bytes_decoded"));
      node->bytes_raw = static_cast<uint64_t>(event.Int("bytes_raw"));
      node->blocks_skipped =
          static_cast<uint64_t>(event.Int("blocks_skipped"));
      node->rows_pruned = static_cast<uint64_t>(event.Int("rows_pruned"));
      for (int i = 0; i < 6; ++i) {
        node->blocks_by_encoding[i] =
            static_cast<uint64_t>(event.Int(StrCat("enc", i)));
      }
      node->prefetch_hits = static_cast<uint64_t>(event.Int("prefetch_hits"));
      node->prefetch_misses =
          static_cast<uint64_t>(event.Int("prefetch_misses"));
      node->prefetch_wait_ns =
          static_cast<uint64_t>(event.Int("prefetch_wait_ns"));
      node->mem_current_bytes =
          static_cast<uint64_t>(event.Int("mem_current_bytes"));
      node->mem_peak_bytes =
          static_cast<uint64_t>(event.Int("mem_peak_bytes"));
      node->tasks = static_cast<uint64_t>(event.Int("tasks"));
    } else if (*kind == "profile_span") {
      report.profile.first_start_us = event.Int("first_start_us");
      report.profile.last_end_us = event.Int("last_end_us");
    } else if (*kind == "job_finished") {
      saw_job_event = true;
      if (const std::string* job = event.FindString("job")) {
        report.job_name = *job;
      }
      if (event.numbers.count("num_nodes")) {
        report.num_nodes = static_cast<int>(event.Int("num_nodes"));
      }
      report.wall_seconds = event.Double("wall_seconds");
    }
    // "straggler" and "running" transitions carry no report state.
  }
  if (!saw_job_event) {
    return Status::InvalidArgument("job history: no job-level events");
  }
  auto by_task = [](const TaskReport& a, const TaskReport& b) {
    return std::tie(a.index, a.attempt) < std::tie(b.index, b.attempt);
  };
  std::sort(report.map_tasks.begin(), report.map_tasks.end(), by_task);
  std::sort(report.reduce_tasks.begin(), report.reduce_tasks.end(), by_task);
  std::sort(report.spans.begin(), report.spans.end(),
            [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  // The live profile carries the job wall clock (stamped at commit); the
  // reconstructed one recovers it from the job_finished event.
  report.profile.wall_seconds = report.wall_seconds;
  return report;
}

}  // namespace mr
}  // namespace clydesdale
