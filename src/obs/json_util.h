#ifndef CLYDESDALE_OBS_JSON_UTIL_H_
#define CLYDESDALE_OBS_JSON_UTIL_H_

#include <string>
#include <string_view>

namespace clydesdale {
namespace obs {

/// Appends the JSON string-literal escape of `s` to `out`, without the
/// surrounding quotes: quotes and backslashes become \" and \\, and control
/// characters become \n / \t / \uXXXX. Shared by every hand-rolled JSON
/// writer in the repo (Chrome traces, metric exposition, job history) so
/// a span or metric name with a quote can't corrupt any of them.
void AppendJsonEscaped(std::string* out, std::string_view s);

/// `s` as a quoted JSON string literal.
std::string JsonQuote(std::string_view s);

/// `v` formatted so the exact double round-trips through strtod ("%.17g").
/// History files use it for wall-clock seconds, which must reload
/// byte-equivalent to the live report.
std::string JsonDouble(double v);

}  // namespace obs
}  // namespace clydesdale

#endif  // CLYDESDALE_OBS_JSON_UTIL_H_
