#ifndef CLYDESDALE_OBS_METRICS_POLLER_H_
#define CLYDESDALE_OBS_METRICS_POLLER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace clydesdale {
namespace obs {

/// One timestamped registry snapshot.
struct MetricsSample {
  int64_t t_ms = 0;  ///< milliseconds since the poller started
  std::vector<MetricSampleRow> rows;

  /// Value of a flattened key (`name{label="v"}`), 0 when absent.
  int64_t Value(const std::string& key) const;
};

/// The sampled trajectory of a registry over one job — what the Hadoop
/// JobTracker UI plots as slot occupancy / shuffle backlog over time.
struct MetricsTimeSeries {
  int64_t interval_ms = 0;
  std::vector<MetricsSample> samples;

  /// Largest value the key reached across all samples (0 when never seen).
  int64_t MaxValue(const std::string& key) const;

  /// {"interval_ms":...,"samples":[{"t_ms":...,"values":{key:value,...}}]}
  std::string ToJson() const;
};

/// Background sampler: every `interval_ms` it runs the registered probes
/// (callbacks that refresh derived gauges — e.g. the straggler check) and
/// appends one registry snapshot to the series. Stop() takes a final
/// sample so the series always covers the job's end state.
class MetricsPoller {
 public:
  MetricsPoller(const MetricsRegistry* registry, int64_t interval_ms);
  ~MetricsPoller();  ///< Stops (without harvesting) if still running.

  MetricsPoller(const MetricsPoller&) = delete;
  MetricsPoller& operator=(const MetricsPoller&) = delete;

  /// Registers a per-tick callback; must be called before Start. Probes run
  /// on the poller thread, before each snapshot.
  void AddProbe(std::function<void()> probe);

  void Start();

  /// Signals the thread, joins it, runs the probes once more, takes the
  /// final sample, and returns the series. Idempotent (subsequent calls
  /// return an empty series).
  MetricsTimeSeries Stop();

  /// Samples taken so far (approximate while running).
  size_t num_samples() const;

 private:
  void Loop();
  void TakeSample(int64_t t_ms);

  const MetricsRegistry* const registry_;
  const int64_t interval_ms_;
  std::vector<std::function<void()>> probes_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  MetricsTimeSeries series_;
  std::thread thread_;
};

/// One dashboard row: a title and the flattened sample key it plots.
struct DashboardRow {
  std::string title;
  std::string key;
};

/// Renders a fixed-width text dashboard of the series: one row per entry,
/// time flowing left to right, each column the max value within its time
/// bucket ('.' = 0, '1'..'9', '+' for >= 10). The mapreduce layer feeds it
/// per-node slot-occupancy keys to get the cluster view of a job.
std::string RenderDashboard(const MetricsTimeSeries& series,
                            const std::vector<DashboardRow>& rows,
                            int width = 60);

}  // namespace obs
}  // namespace clydesdale

#endif  // CLYDESDALE_OBS_METRICS_POLLER_H_
