#ifndef CLYDESDALE_OBS_CHROME_TRACE_H_
#define CLYDESDALE_OBS_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace clydesdale {
namespace obs {

/// Renders spans as Chrome trace_event JSON (the format chrome://tracing
/// and https://ui.perfetto.dev load). Each span becomes one complete ("X")
/// event; pid = node id (so each simulated node gets a lane group) and
/// tid = the recorder-assigned thread id. `process_name` labels pid -1,
/// the job-level lane for spans not bound to a node.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans,
                            const std::string& process_name);

/// Writes ChromeTraceJson(spans) to `path`, overwriting.
Status WriteChromeTrace(const std::vector<SpanRecord>& spans,
                        const std::string& process_name,
                        const std::string& path);

}  // namespace obs
}  // namespace clydesdale

#endif  // CLYDESDALE_OBS_CHROME_TRACE_H_
