#include "obs/query_profile.h"

#include <time.h>

#include <algorithm>

#include "common/strings.h"
#include "obs/json_util.h"

namespace clydesdale {
namespace obs {

namespace {

/// Tag order matches storage/column_codec.h (plain..dict_rle).
constexpr const char* kEncodingNames[6] = {"plain",  "rle",  "bitpack",
                                           "for",    "dict", "dict_rle"};

std::string Millis(uint64_t ns) {
  return StrCat(FormatDouble(static_cast<double>(ns) / 1e6, 3), "ms");
}

}  // namespace

OperatorProfile* OperatorProfile::Child(std::string_view child_name) {
  for (OperatorProfile& child : children) {
    if (child.name == child_name) return &child;
  }
  children.emplace_back();
  children.back().name = std::string(child_name);
  return &children.back();
}

void OperatorProfile::MergeFrom(const OperatorProfile& other) {
  if (kind.empty()) kind = other.kind;
  rows_in += other.rows_in;
  rows_out += other.rows_out;
  batches += other.batches;
  wall_ns += other.wall_ns;
  wall_max_ns = std::max(wall_max_ns, other.wall_max_ns);
  cpu_ns += other.cpu_ns;
  bytes_decoded += other.bytes_decoded;
  bytes_raw += other.bytes_raw;
  blocks_skipped += other.blocks_skipped;
  rows_pruned += other.rows_pruned;
  for (int i = 0; i < 6; ++i) blocks_by_encoding[i] += other.blocks_by_encoding[i];
  prefetch_hits += other.prefetch_hits;
  prefetch_misses += other.prefetch_misses;
  prefetch_wait_ns += other.prefetch_wait_ns;
  mem_current_bytes = std::max(mem_current_bytes, other.mem_current_bytes);
  mem_peak_bytes = std::max(mem_peak_bytes, other.mem_peak_bytes);
  tasks += other.tasks;
  for (const OperatorProfile& theirs : other.children) {
    Child(theirs.name)->MergeFrom(theirs);
  }
}

OperatorProfile* QueryProfile::Root(std::string_view root_name) {
  for (OperatorProfile& root : roots) {
    if (root.name == root_name) return &root;
  }
  roots.emplace_back();
  roots.back().name = std::string(root_name);
  return &roots.back();
}

void QueryProfile::MergeAttempt(const OperatorProfile& attempt_root,
                                int64_t start_us, int64_t end_us) {
  // Empty roots (not a time sentinel) marks the first attempt, so an
  // attempt legitimately starting at t=0 still anchors the envelope.
  const bool first_attempt = roots.empty();
  Root(attempt_root.name)->MergeFrom(attempt_root);
  if (first_attempt || start_us < first_start_us) {
    first_start_us = start_us;
  }
  last_end_us = std::max(last_end_us, end_us);
}

void QueryProfile::MergeFrom(const QueryProfile& other) {
  if (other.empty()) return;
  const bool first_merge = roots.empty();
  for (const OperatorProfile& root : other.roots) {
    Root(root.name)->MergeFrom(root);
  }
  if (first_merge || other.first_start_us < first_start_us) {
    first_start_us = other.first_start_us;
  }
  last_end_us = std::max(last_end_us, other.last_end_us);
}

namespace {

uint64_t CountNodes(const OperatorProfile& node) {
  uint64_t n = 1;
  for (const OperatorProfile& child : node.children) n += CountNodes(child);
  return n;
}

void RenderNodeText(const OperatorProfile& node, const std::string& indent,
                    bool is_child, std::string* out) {
  out->append(indent);
  if (is_child) out->append("└─ ");
  out->append(node.name);
  out->append(StrCat(" [", node.kind.empty() ? "op" : node.kind, "]"));
  out->append(StrCat("  rows_in=", node.rows_in, " rows_out=", node.rows_out));
  if (node.rows_in > 0) {
    out->append(StrCat(" sel=", FormatDouble(node.selectivity(), 4)));
  }
  if (node.batches > 0) out->append(StrCat(" batches=", node.batches));
  out->append(StrCat("  wall(sum)=", Millis(node.wall_ns), " wall(max)=",
                     Millis(node.wall_max_ns), " cpu=", Millis(node.cpu_ns),
                     " tasks=", node.tasks));
  if (node.bytes_raw > 0 || node.bytes_decoded > 0) {
    out->append(StrCat("\n", indent, is_child ? "   " : "",
                       "   bytes dec/raw=", HumanBytes(node.bytes_decoded),
                       "/", HumanBytes(node.bytes_raw), " blocks_skipped=",
                       node.blocks_skipped, " rows_pruned=", node.rows_pruned));
    bool any_encoding = false;
    for (int i = 0; i < 6; ++i) any_encoding |= node.blocks_by_encoding[i] > 0;
    if (any_encoding) {
      out->append(" enc=");
      bool first = true;
      for (int i = 0; i < 6; ++i) {
        if (node.blocks_by_encoding[i] == 0) continue;
        if (!first) out->push_back(',');
        first = false;
        out->append(
            StrCat(kEncodingNames[i], ":", node.blocks_by_encoding[i]));
      }
    }
    if (node.prefetch_hits + node.prefetch_misses > 0) {
      out->append(StrCat(" prefetch=", node.prefetch_hits, "h/",
                         node.prefetch_misses, "m wait=",
                         Millis(node.prefetch_wait_ns)));
    }
  }
  if (node.mem_current_bytes > 0 || node.mem_peak_bytes > 0) {
    out->append(StrCat("\n", indent, is_child ? "   " : "",
                       "   mem cur/peak=", HumanBytes(node.mem_current_bytes),
                       "/", HumanBytes(node.mem_peak_bytes)));
  }
  out->push_back('\n');
  const std::string child_indent = indent + (is_child ? "   " : "");
  for (const OperatorProfile& child : node.children) {
    RenderNodeText(child, child_indent, /*is_child=*/true, out);
  }
}

void RenderNodeJson(const OperatorProfile& node, std::string* out) {
  out->append("{\"name\":");
  out->append(JsonQuote(node.name));
  out->append(",\"kind\":");
  out->append(JsonQuote(node.kind));
  out->append(StrCat(",\"rows_in\":", node.rows_in,
                     ",\"rows_out\":", node.rows_out));
  out->append(",\"selectivity\":");
  out->append(node.rows_in > 0 ? JsonDouble(node.selectivity()) : "null");
  out->append(StrCat(",\"batches\":", node.batches, ",\"wall_ns\":",
                     node.wall_ns, ",\"wall_max_ns\":", node.wall_max_ns,
                     ",\"cpu_ns\":", node.cpu_ns, ",\"bytes_decoded\":",
                     node.bytes_decoded, ",\"bytes_raw\":", node.bytes_raw,
                     ",\"blocks_skipped\":", node.blocks_skipped,
                     ",\"rows_pruned\":", node.rows_pruned));
  out->append(",\"blocks_by_encoding\":[");
  for (int i = 0; i < 6; ++i) {
    if (i != 0) out->push_back(',');
    out->append(StrCat(node.blocks_by_encoding[i]));
  }
  out->push_back(']');
  out->append(StrCat(",\"prefetch_hits\":", node.prefetch_hits,
                     ",\"prefetch_misses\":", node.prefetch_misses,
                     ",\"prefetch_wait_ns\":", node.prefetch_wait_ns,
                     ",\"mem_current_bytes\":", node.mem_current_bytes,
                     ",\"mem_peak_bytes\":", node.mem_peak_bytes,
                     ",\"tasks\":", node.tasks));
  out->append(",\"children\":[");
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) out->push_back(',');
    RenderNodeJson(node.children[i], out);
  }
  out->append("]}");
}

void FlattenNode(const OperatorProfile& node, const std::string& prefix,
                 std::vector<FlatProfileNode>* out) {
  const std::string path =
      prefix.empty() ? node.name : StrCat(prefix, ">", node.name);
  out->push_back({path, &node});
  for (const OperatorProfile& child : node.children) {
    FlattenNode(child, path, out);
  }
}

}  // namespace

uint64_t NumProfileOperators(const QueryProfile& profile) {
  uint64_t n = 0;
  for (const OperatorProfile& root : profile.roots) n += CountNodes(root);
  return n;
}

std::string ExplainAnalyzeText(const QueryProfile& profile) {
  std::string out = "EXPLAIN ANALYZE";
  out.append(StrCat("  wall=", HumanSeconds(profile.wall_seconds),
                    "  profiled=", HumanSeconds(profile.ProfiledSpanSeconds())));
  if (profile.wall_seconds > 0) {
    out.append(StrCat(
        " (", FormatDouble(100.0 * profile.ProfiledSpanSeconds() /
                               profile.wall_seconds, 1),
        "% of wall)"));
  }
  out.append(StrCat("  operators=", NumProfileOperators(profile), "\n"));
  for (const OperatorProfile& root : profile.roots) {
    RenderNodeText(root, "", /*is_child=*/false, &out);
  }
  return out;
}

std::string ExplainAnalyzeJson(const QueryProfile& profile) {
  std::string out = "{\"wall_seconds\":";
  out.append(JsonDouble(profile.wall_seconds));
  out.append(",\"profiled_span_seconds\":");
  out.append(JsonDouble(profile.ProfiledSpanSeconds()));
  out.append(StrCat(",\"first_start_us\":", profile.first_start_us,
                    ",\"last_end_us\":", profile.last_end_us, ",\"operators\":",
                    NumProfileOperators(profile)));
  out.append(",\"roots\":[");
  for (size_t i = 0; i < profile.roots.size(); ++i) {
    if (i != 0) out.push_back(',');
    RenderNodeJson(profile.roots[i], &out);
  }
  out.append("]}");
  return out;
}

std::vector<FlatProfileNode> FlattenProfile(const QueryProfile& profile) {
  std::vector<FlatProfileNode> flat;
  for (const OperatorProfile& root : profile.roots) {
    FlattenNode(root, "", &flat);
  }
  return flat;
}

OperatorProfile* EnsureProfilePath(QueryProfile* profile,
                                   std::string_view path) {
  size_t start = 0;
  OperatorProfile* node = nullptr;
  while (start <= path.size()) {
    size_t sep = path.find('>', start);
    if (sep == std::string_view::npos) sep = path.size();
    const std::string_view segment = path.substr(start, sep - start);
    node = node == nullptr ? profile->Root(segment) : node->Child(segment);
    start = sep + 1;
    if (sep == path.size()) break;
  }
  return node;
}

int64_t ThreadCpuNanos() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace obs
}  // namespace clydesdale
