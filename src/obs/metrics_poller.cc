#include "obs/metrics_poller.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/json_util.h"

namespace clydesdale {
namespace obs {

int64_t MetricsSample::Value(const std::string& key) const {
  for (const MetricSampleRow& row : rows) {
    if (row.key == key) return row.value;
  }
  return 0;
}

int64_t MetricsTimeSeries::MaxValue(const std::string& key) const {
  int64_t max = 0;
  for (const MetricsSample& sample : samples) {
    max = std::max(max, sample.Value(key));
  }
  return max;
}

std::string MetricsTimeSeries::ToJson() const {
  std::string out = StrCat("{\"interval_ms\":", interval_ms, ",\"samples\":[");
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) out += ",";
    out += StrCat("\n{\"t_ms\":", samples[i].t_ms, ",\"values\":{");
    for (size_t r = 0; r < samples[i].rows.size(); ++r) {
      if (r > 0) out += ",";
      out += StrCat(JsonQuote(samples[i].rows[r].key), ":",
                    samples[i].rows[r].value);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

MetricsPoller::MetricsPoller(const MetricsRegistry* registry,
                             int64_t interval_ms)
    : registry_(registry), interval_ms_(std::max<int64_t>(interval_ms, 1)) {
  series_.interval_ms = interval_ms_;
}

MetricsPoller::~MetricsPoller() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
}

void MetricsPoller::AddProbe(std::function<void()> probe) {
  CLY_CHECK(!started_) << "AddProbe after Start";
  probes_.push_back(std::move(probe));
}

void MetricsPoller::Start() {
  CLY_CHECK(!started_) << "poller started twice";
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
}

MetricsTimeSeries MetricsPoller::Stop() {
  if (!thread_.joinable()) return {};
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // The final sample is taken after the join: the probes see fully
  // quiesced state and the series always records the job's end.
  for (const auto& probe : probes_) probe();
  std::lock_guard<std::mutex> lock(mu_);
  TakeSample(series_.samples.empty()
                 ? 0
                 : series_.samples.back().t_ms + interval_ms_);
  return std::move(series_);
}

size_t MetricsPoller::num_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.samples.size();
}

void MetricsPoller::TakeSample(int64_t t_ms) {
  MetricsSample sample;
  sample.t_ms = t_ms;
  sample.rows = registry_->Samples();
  series_.samples.push_back(std::move(sample));
}

void MetricsPoller::Loop() {
  const Stopwatch clock;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    for (const auto& probe : probes_) probe();
    const int64_t now_ms = clock.ElapsedMicros() / 1000;
    lock.lock();
    if (stop_) break;
    TakeSample(now_ms);
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_; });
  }
}

std::string RenderDashboard(const MetricsTimeSeries& series,
                            const std::vector<DashboardRow>& rows, int width) {
  width = std::max(width, 1);
  const size_t n = series.samples.size();
  std::string out;
  if (n == 0) return "cluster dashboard: no samples\n";
  const int cols = static_cast<int>(std::min<size_t>(n, static_cast<size_t>(width)));
  const int64_t span_ms =
      series.samples.back().t_ms - series.samples.front().t_ms;
  out += StrCat("cluster dashboard: ", n, " samples over ", span_ms,
                " ms (1 col ~ ",
                std::max<int64_t>(1, span_ms / std::max(cols, 1)),
                " ms; '.'=0, '1'..'9', '+'>=10)\n");
  int title_width = 0;
  for (const DashboardRow& row : rows) {
    title_width = std::max(title_width, static_cast<int>(row.title.size()));
  }
  for (const DashboardRow& row : rows) {
    out += StrCat("  ", Pad(row.title, title_width), " [");
    int64_t row_max = 0;
    for (int c = 0; c < cols; ++c) {
      // Bucket = max over the samples that fall into this column.
      const size_t lo = n * static_cast<size_t>(c) / static_cast<size_t>(cols);
      const size_t hi =
          std::max(lo + 1, n * static_cast<size_t>(c + 1) / static_cast<size_t>(cols));
      int64_t bucket = 0;
      for (size_t s = lo; s < hi && s < n; ++s) {
        bucket = std::max(bucket, series.samples[s].Value(row.key));
      }
      row_max = std::max(row_max, bucket);
      if (bucket <= 0) {
        out += '.';
      } else if (bucket <= 9) {
        out += static_cast<char>('0' + bucket);
      } else {
        out += '+';
      }
    }
    out += StrCat("] max=", row_max, "\n");
  }
  return out;
}

}  // namespace obs
}  // namespace clydesdale
