#include "obs/chrome_trace.h"

#include <fstream>
#include <sstream>

#include "obs/json_util.h"

namespace clydesdale {
namespace obs {

namespace {

/// JSON string escape for span/metric names (quotes, backslashes, control
/// chars) — the one shared implementation (obs/json_util) so every exporter
/// escapes identically.
void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << JsonQuote(s);
}

}  // namespace

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans,
                            const std::string& process_name) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Metadata: name the job-level process lane (pid -1).
  out << R"({"name":"process_name","ph":"M","pid":-1,"tid":0,"args":{"name":)";
  AppendJsonString(out, process_name);
  out << "}}";
  for (const SpanRecord& span : spans) {
    out << ",\n{\"name\":";
    AppendJsonString(out, span.name);
    out << ",\"cat\":";
    AppendJsonString(out, span.category);
    out << ",\"ph\":\"X\",\"ts\":" << span.start_us
        << ",\"dur\":" << span.dur_us << ",\"pid\":" << span.node
        << ",\"tid\":" << span.tid << ",\"args\":{\"task\":" << span.task
        << ",\"node\":" << span.node << ",\"depth\":" << span.depth << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

Status WriteChromeTrace(const std::vector<SpanRecord>& spans,
                        const std::string& process_name,
                        const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IoError("cannot open trace file: " + path);
  file << ChromeTraceJson(spans, process_name);
  file.close();
  if (!file) return Status::IoError("short write to trace file: " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace clydesdale
