#include "obs/json_util.h"

#include <cstdio>

namespace clydesdale {
namespace obs {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  AppendJsonEscaped(&out, s);
  out += '"';
  return out;
}

std::string JsonDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace obs
}  // namespace clydesdale
