#ifndef CLYDESDALE_OBS_QUERY_PROFILE_H_
#define CLYDESDALE_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace clydesdale {
namespace obs {

/// One node of a per-operator execution profile: the actuals the paper's
/// §6.3 plan dissection reads off a run (row counts, time, bytes) for a
/// single plan step. Nodes are built per task attempt by the operator that
/// owns the step (scan, probe, aggregate, shuffle, ...) and merged
/// tree-structurally across attempts at job commit — counters add, wall
/// maxima track the slowest attempt, and children match by name. The struct
/// is deliberately plain data (no mapreduce dependencies) so the obs layer
/// stays at the bottom of the library stack.
struct OperatorProfile {
  std::string name;  ///< Unique among siblings, e.g. "scan:/ssb/lineorder".
  std::string kind;  ///< "scan" | "probe" | "aggregate" | "shuffle" | ...

  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t batches = 0;
  uint64_t wall_ns = 0;      ///< Summed across attempts (total work).
  uint64_t wall_max_ns = 0;  ///< Slowest single attempt (critical path).
  uint64_t cpu_ns = 0;       ///< Thread CPU time, summed across attempts.

  // Scan-only detail (zero elsewhere): decoded-vs-skipped accounting and the
  // per-encoding / zone-map hit histograms from storage::ScanStats.
  uint64_t bytes_decoded = 0;
  uint64_t bytes_raw = 0;
  uint64_t blocks_skipped = 0;
  uint64_t rows_pruned = 0;
  uint64_t blocks_by_encoding[6] = {0, 0, 0, 0, 0, 0};
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;
  uint64_t prefetch_wait_ns = 0;

  // Memory accounting (obs::MemTracker attribution). Gauges, not counters:
  // MergeFrom takes the max across attempts rather than summing, so a node
  // reports the largest single-attempt footprint — summing would double-count
  // dimension tables shared by every attempt on a node (paper §5.2).
  uint64_t mem_current_bytes = 0;  ///< Bytes still held at attempt end.
  uint64_t mem_peak_bytes = 0;     ///< High-water mark over the attempt.

  /// Task attempts that contributed to this node.
  uint64_t tasks = 0;

  std::vector<OperatorProfile> children;

  /// rows_out / rows_in, or -1 when the node has no input rows (sources).
  double selectivity() const {
    if (rows_in == 0) return -1.0;
    return static_cast<double>(rows_out) / static_cast<double>(rows_in);
  }

  /// Child with the given name, creating an empty one if absent.
  OperatorProfile* Child(std::string_view child_name);

  /// Adds `other`'s counters into this node and recursively merges its
  /// children by name (unmatched children are appended). Loss-free: every
  /// counter of `other` lands exactly once.
  void MergeFrom(const OperatorProfile& other);
};

/// Job-level profile: one merged operator tree per attempt shape (typically
/// a "map" root and, for jobs with reducers, a "reduce" root), plus the
/// wall-clock envelope of the profiled attempts.
struct QueryProfile {
  double wall_seconds = 0;   ///< Whole-job wall clock (from JobReport).
  int64_t first_start_us = 0;  ///< Earliest attempt start (steady clock).
  int64_t last_end_us = 0;     ///< Latest attempt end (steady clock).
  std::vector<OperatorProfile> roots;

  bool empty() const { return roots.empty(); }

  /// Wall-clock span actually covered by profiled attempts, in seconds.
  double ProfiledSpanSeconds() const {
    return last_end_us > first_start_us
               ? static_cast<double>(last_end_us - first_start_us) / 1e6
               : 0.0;
  }

  /// Root with the given name, creating an empty one if absent.
  OperatorProfile* Root(std::string_view root_name);

  /// Merges one attempt's tree (root matched by name) and widens the
  /// [first_start_us, last_end_us] envelope.
  void MergeAttempt(const OperatorProfile& attempt_root, int64_t start_us,
                    int64_t end_us);

  void MergeFrom(const QueryProfile& other);
};

/// Total node count across all roots.
uint64_t NumProfileOperators(const QueryProfile& profile);

/// Human-readable annotated plan tree ("EXPLAIN ANALYZE ..."); one line per
/// operator with rows/selectivity/time, plus scan byte/block/prefetch detail
/// where present. Estimates-vs-actuals columns appear once a planner
/// produces estimates; today every column is an actual.
std::string ExplainAnalyzeText(const QueryProfile& profile);

/// The same tree as one JSON object (stable field order, ints exact, doubles
/// %.17g) — the payload run_benches.sh exports as BENCH_profile.json.
std::string ExplainAnalyzeJson(const QueryProfile& profile);

/// Flattened view for line-oriented serialization (job history JSONL): every
/// node paired with its '>'-joined root-to-node path, pre-order, so
/// rebuilding in order recreates the exact tree shape.
struct FlatProfileNode {
  std::string path;
  const OperatorProfile* node;
};
std::vector<FlatProfileNode> FlattenProfile(const QueryProfile& profile);

/// Node at `path` ('>'-separated), creating every missing node on the way.
OperatorProfile* EnsureProfilePath(QueryProfile* profile,
                                   std::string_view path);

/// Calling thread's CPU time (user + system) in nanoseconds.
int64_t ThreadCpuNanos();

}  // namespace obs
}  // namespace clydesdale

#endif  // CLYDESDALE_OBS_QUERY_PROFILE_H_
