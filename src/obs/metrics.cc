#include "obs/metrics.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/json_util.h"

namespace clydesdale {
namespace obs {

namespace {

/// Prometheus label-value escaping: backslash, quote, newline.
std::string PromEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Merges an extra label (e.g. quantile="0.5") into a rendered label block.
std::string WithExtraLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return StrCat("{", extra, "}");
  return StrCat(labels.substr(0, labels.size() - 1), ",", extra, "}");
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

MetricFamily::MetricFamily(std::string name, std::string help, MetricKind kind,
                           std::vector<std::string> label_keys)
    : name_(std::move(name)),
      help_(std::move(help)),
      kind_(kind),
      label_keys_(std::move(label_keys)) {}

MetricFamily::Cell* MetricFamily::CellAt(
    std::vector<std::string> label_values) {
  CLY_CHECK(label_values.size() == label_keys_.size())
      << "family " << name_ << " takes " << label_keys_.size()
      << " label(s), got " << label_values.size();
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = cells_[std::move(label_values)];
  if (slot == nullptr) slot = std::make_unique<Cell>();
  return slot.get();
}

Gauge* MetricFamily::GaugeAt(std::vector<std::string> label_values) {
  CLY_CHECK(kind_ == MetricKind::kGauge) << name_ << " is not a gauge";
  return &CellAt(std::move(label_values))->gauge;
}

Counter* MetricFamily::CounterAt(std::vector<std::string> label_values) {
  CLY_CHECK(kind_ == MetricKind::kCounter) << name_ << " is not a counter";
  return &CellAt(std::move(label_values))->counter;
}

Histogram* MetricFamily::HistogramAt(std::vector<std::string> label_values) {
  CLY_CHECK(kind_ == MetricKind::kHistogram) << name_ << " is not a histogram";
  return &CellAt(std::move(label_values))->histogram;
}

std::string MetricFamily::LabelString(
    const std::vector<std::string>& values) const {
  if (label_keys_.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < label_keys_.size(); ++i) {
    if (i > 0) out += ",";
    out += StrCat(label_keys_[i], "=\"", PromEscape(values[i]), "\"");
  }
  out += "}";
  return out;
}

void MetricFamily::AppendPrometheus(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  *out += StrCat("# HELP ", name_, " ", help_, "\n");
  // Quantile exposition matches the Prometheus "summary" type, not the
  // bucketed "histogram" type.
  *out += StrCat("# TYPE ", name_, " ",
                 kind_ == MetricKind::kHistogram ? "summary"
                                                 : MetricKindName(kind_),
                 "\n");
  for (const auto& [values, cell] : cells_) {
    const std::string labels = LabelString(values);
    switch (kind_) {
      case MetricKind::kGauge:
        *out += StrCat(name_, labels, " ", cell->gauge.Value(), "\n");
        break;
      case MetricKind::kCounter:
        *out += StrCat(name_, labels, " ", cell->counter.Value(), "\n");
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = cell->histogram;
        for (double q : {0.5, 0.95, 0.99}) {
          *out += StrCat(
              name_,
              WithExtraLabel(labels, StrCat("quantile=\"", q, "\"")), " ",
              h.Percentile(q), "\n");
        }
        *out += StrCat(name_, "_count", labels, " ", h.Count(), "\n");
        *out += StrCat(name_, "_sum", labels, " ", h.Sum(), "\n");
        break;
      }
    }
  }
}

void MetricFamily::AppendJson(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  *out += StrCat("{\"name\":", JsonQuote(name_), ",\"type\":\"",
                 MetricKindName(kind_), "\",\"help\":", JsonQuote(help_),
                 ",\"samples\":[");
  bool first = true;
  for (const auto& [values, cell] : cells_) {
    if (!first) *out += ",";
    first = false;
    *out += "{\"labels\":{";
    for (size_t i = 0; i < label_keys_.size(); ++i) {
      if (i > 0) *out += ",";
      *out += StrCat(JsonQuote(label_keys_[i]), ":", JsonQuote(values[i]));
    }
    *out += "}";
    switch (kind_) {
      case MetricKind::kGauge:
        *out += StrCat(",\"value\":", cell->gauge.Value());
        break;
      case MetricKind::kCounter:
        *out += StrCat(",\"value\":", cell->counter.Value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = cell->histogram;
        *out += StrCat(",\"count\":", h.Count(), ",\"sum\":", h.Sum(),
                       ",\"p50\":", h.Percentile(0.5),
                       ",\"p95\":", h.Percentile(0.95),
                       ",\"p99\":", h.Percentile(0.99), ",\"max\":", h.Max());
        break;
      }
    }
    *out += "}";
  }
  *out += "]}";
}

void MetricFamily::AppendSamples(std::vector<MetricSampleRow>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [values, cell] : cells_) {
    const std::string labels = LabelString(values);
    switch (kind_) {
      case MetricKind::kGauge:
        out->push_back({StrCat(name_, labels), cell->gauge.Value()});
        break;
      case MetricKind::kCounter:
        out->push_back({StrCat(name_, labels), cell->counter.Value()});
        break;
      case MetricKind::kHistogram:
        out->push_back(
            {StrCat(name_, "_count", labels), cell->histogram.Count()});
        out->push_back({StrCat(name_, "_sum", labels), cell->histogram.Sum()});
        break;
    }
  }
}

MetricFamily* MetricsRegistry::FamilyLocked(
    const std::string& name, const std::string& help, MetricKind kind,
    std::vector<std::string> label_keys) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = families_[name];
  if (slot == nullptr) {
    slot = std::make_unique<MetricFamily>(name, help, kind,
                                          std::move(label_keys));
  }
  CLY_CHECK(slot->kind() == kind)
      << "metric family " << name << " re-registered as "
      << MetricKindName(kind) << ", was " << MetricKindName(slot->kind());
  return slot.get();
}

MetricFamily* MetricsRegistry::GaugeFamily(const std::string& name,
                                           const std::string& help,
                                           std::vector<std::string> label_keys) {
  return FamilyLocked(name, help, MetricKind::kGauge, std::move(label_keys));
}

MetricFamily* MetricsRegistry::CounterFamily(
    const std::string& name, const std::string& help,
    std::vector<std::string> label_keys) {
  return FamilyLocked(name, help, MetricKind::kCounter, std::move(label_keys));
}

MetricFamily* MetricsRegistry::HistogramFamily(
    const std::string& name, const std::string& help,
    std::vector<std::string> label_keys) {
  return FamilyLocked(name, help, MetricKind::kHistogram,
                      std::move(label_keys));
}

const MetricFamily* MetricsRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  return it == families_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MetricsRegistry::FamilyNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, family] : families_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::PrometheusText() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) family->AppendPrometheus(&out);
  return out;
}

std::string MetricsRegistry::JsonText() const {
  std::string out = "{\"families\":[";
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool first = true;
    for (const auto& [name, family] : families_) {
      if (!first) out += ",\n";
      first = false;
      family->AppendJson(&out);
    }
  }
  out += "]}\n";
  return out;
}

std::vector<MetricSampleRow> MetricsRegistry::Samples() const {
  std::vector<MetricSampleRow> rows;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) family->AppendSamples(&rows);
  return rows;
}

}  // namespace obs
}  // namespace clydesdale
