#ifndef CLYDESDALE_OBS_METRICS_H_
#define CLYDESDALE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace clydesdale {
namespace obs {

/// Instantaneous value (slot occupancy, queue depth, bytes in flight).
/// Updates are single relaxed atomic ops — safe to hammer from the
/// executor hot path with no lock.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Monotone event count (Prometheus counter semantics: only ever goes up).
class Counter {
 public:
  void Inc() { Add(1); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

enum class MetricKind { kGauge, kCounter, kHistogram };

/// "gauge" / "counter" / "histogram" (the Prometheus TYPE line uses
/// "summary" for histograms, since we expose quantiles, not buckets).
const char* MetricKindName(MetricKind kind);

/// One flattened exposition row: `name{label="v"}` -> int64. Histogram
/// children expand to `<name>_count` and `<name>_sum` rows so a sample is
/// always a single int64 — the unit the poller's time series stores.
struct MetricSampleRow {
  std::string key;  ///< e.g. `mr_running_map_tasks{node="0"}`
  int64_t value = 0;
};

/// One named metric family: a fixed kind and label-key set, with one child
/// cell per distinct label-value tuple (the Prometheus data model). Children
/// are created on first use and never removed, so returned pointers stay
/// valid for the registry's lifetime and the update path is one atomic op.
class MetricFamily {
 public:
  MetricFamily(std::string name, std::string help, MetricKind kind,
               std::vector<std::string> label_keys);

  MetricFamily(const MetricFamily&) = delete;
  MetricFamily& operator=(const MetricFamily&) = delete;

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  MetricKind kind() const { return kind_; }

  /// Child accessors; `label_values` must match the family's label keys in
  /// arity and the accessor must match the family's kind (checked fatally —
  /// a kind mismatch is a programming error, not an input error).
  Gauge* GaugeAt(std::vector<std::string> label_values = {});
  Counter* CounterAt(std::vector<std::string> label_values = {});
  Histogram* HistogramAt(std::vector<std::string> label_values = {});

  /// Prometheus text exposition (# HELP / # TYPE / one line per child).
  void AppendPrometheus(std::string* out) const;
  /// One JSON object {"name":...,"type":...,"help":...,"samples":[...]}.
  void AppendJson(std::string* out) const;
  /// Flattened rows for the poller (histograms -> _count and _sum).
  void AppendSamples(std::vector<MetricSampleRow>* out) const;

 private:
  struct Cell {
    Gauge gauge;          // used when kind == kGauge
    Counter counter;      // used when kind == kCounter
    Histogram histogram;  // used when kind == kHistogram
  };

  Cell* CellAt(std::vector<std::string> label_values);
  /// `{k1="v1",k2="v2"}` with Prometheus label-value escaping; "" when the
  /// family has no labels.
  std::string LabelString(const std::vector<std::string>& values) const;

  const std::string name_;
  const std::string help_;
  const MetricKind kind_;
  const std::vector<std::string> label_keys_;

  mutable std::mutex mu_;
  std::map<std::vector<std::string>, std::unique_ptr<Cell>> cells_;
};

/// Process-wide (per MrCluster) registry of metric families, the analogue of
/// the stats the Hadoop JobTracker UI scrapes. Families are registered
/// lazily and never removed; re-registering a name returns the existing
/// family (kind must match). Exposition never blocks updates — readers take
/// only the registry map lock and each family's child-map lock, while the
/// hot path touches pre-resolved atomic cells.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricFamily* GaugeFamily(const std::string& name, const std::string& help,
                            std::vector<std::string> label_keys = {});
  MetricFamily* CounterFamily(const std::string& name, const std::string& help,
                              std::vector<std::string> label_keys = {});
  MetricFamily* HistogramFamily(const std::string& name,
                                const std::string& help,
                                std::vector<std::string> label_keys = {});

  /// Null when no family of that name was registered.
  const MetricFamily* Find(const std::string& name) const;

  /// Registered family names, sorted.
  std::vector<std::string> FamilyNames() const;

  /// Prometheus text exposition of every family, in name order.
  std::string PrometheusText() const;

  /// {"families":[...]} JSON exposition, in name order.
  std::string JsonText() const;

  /// Flattened rows of every family, in name order (one poller sample).
  std::vector<MetricSampleRow> Samples() const;

 private:
  MetricFamily* FamilyLocked(const std::string& name, const std::string& help,
                             MetricKind kind,
                             std::vector<std::string> label_keys);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricFamily>> families_;
};

}  // namespace obs
}  // namespace clydesdale

#endif  // CLYDESDALE_OBS_METRICS_H_
