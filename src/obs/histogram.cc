#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace clydesdale {
namespace obs {

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < kSubBuckets) return static_cast<int>(value);
  // msb >= 5 here; split [2^msb, 2^(msb+1)) into kSubBuckets slices.
  const int msb = 63 - std::countl_zero(static_cast<uint64_t>(value));
  const int sub = static_cast<int>((value >> (msb - 5)) & (kSubBuckets - 1));
  return (msb - 4) * kSubBuckets + sub;
}

int64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket < kSubBuckets) return bucket;
  const int msb = bucket / kSubBuckets + 4;
  const int sub = bucket % kSubBuckets;
  return static_cast<int64_t>(kSubBuckets + sub) << (msb - 5);
}

Histogram::Histogram(const Histogram& other) { *this = other; }

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  buckets_ = other.buckets_;
  count_ = other.count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
  return *this;
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  ++buckets_[BucketFor(value)];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

int64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

int64_t Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

int64_t Histogram::Min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

int64_t Histogram::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
}

int64_t Histogram::PercentileLocked(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th value, 1-based; q=0 means the first value.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(q * static_cast<double>(count_) + 0.5));
  int64_t seen = 0;
  for (int i = 0; i < static_cast<int>(buckets_.size()); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::clamp(BucketLowerBound(i), min_, max_);
  }
  return max_;
}

int64_t Histogram::Percentile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PercentileLocked(q);
}

void Histogram::MergeFrom(const Histogram& other) {
  if (this == &other) return;
  std::scoped_lock lock(mu_, other.mu_);
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::string Histogram::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "count=" << count_;
  if (count_ == 0) return out.str();
  out << " mean=" << (static_cast<double>(sum_) / count_)
      << " p50=" << PercentileLocked(0.50) << " p95=" << PercentileLocked(0.95)
      << " p99=" << PercentileLocked(0.99) << " max=" << max_;
  return out.str();
}

HistogramRegistry::HistogramRegistry(const HistogramRegistry& other) {
  *this = other;
}

HistogramRegistry& HistogramRegistry::operator=(const HistogramRegistry& other) {
  if (this == &other) return *this;
  auto snapshot = other.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  histograms_.clear();
  for (auto& [name, histogram] : snapshot) {
    histograms_[name] = std::make_unique<Histogram>(histogram);
  }
  return *this;
}

Histogram* HistogramRegistry::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

const Histogram* HistogramRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::map<std::string, Histogram> HistogramRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Histogram> out;
  for (const auto& [name, histogram] : histograms_) out[name] = *histogram;
  return out;
}

}  // namespace obs
}  // namespace clydesdale
