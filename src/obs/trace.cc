#include "obs/trace.h"

#include <algorithm>
#include <atomic>

namespace clydesdale {
namespace obs {

namespace {
uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

TraceRecorder::TraceRecorder()
    : id_(NextRecorderId()), epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // Cache the (recorder id, buffer) pair per thread: repeat spans from the
  // same thread bypass the mutex entirely. The id check guards against a
  // stale entry left by a previous recorder this thread fed.
  thread_local uint64_t cached_id = 0;
  thread_local ThreadBuffer* cached_buffer = nullptr;
  if (cached_id == id_) return cached_buffer;

  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  buffers_.back()->tid = static_cast<int>(buffers_.size()) - 1;
  cached_id = id_;
  cached_buffer = buffers_.back().get();
  return cached_buffer;
}

std::vector<SpanRecord> TraceRecorder::Drain() {
  std::vector<SpanRecord> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buffer : buffers_) {
      all.insert(all.end(), std::make_move_iterator(buffer->spans.begin()),
                 std::make_move_iterator(buffer->spans.end()));
      buffer->spans.clear();
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     // Parents before children; depth breaks the tie when a
                     // parent and its zero-length children share a start_us
                     // (records land in the buffer at span *end*, so buffer
                     // order alone would put children first).
                     if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                     return a.depth < b.depth;
                   });
  return all;
}

size_t TraceRecorder::num_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->spans.size();
  return n;
}

Span::Span(TraceRecorder* recorder, std::string name, const char* category,
           int task, int node)
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;  // tracing off: near-zero cost
  buffer_ = recorder_->BufferForThisThread();
  record_.name = std::move(name);
  record_.category = category;
  record_.task = task;
  record_.node = node;
  record_.tid = buffer_->tid;
  record_.depth = buffer_->depth++;
  record_.start_us = recorder_->NowMicros();
}

void Span::End() {
  if (recorder_ == nullptr) return;
  record_.dur_us = recorder_->NowMicros() - record_.start_us;
  --buffer_->depth;
  buffer_->spans.push_back(std::move(record_));
  recorder_ = nullptr;
}

}  // namespace obs
}  // namespace clydesdale
