#include "obs/mem_tracker.h"

#include "common/strings.h"

namespace clydesdale {
namespace obs {

std::shared_ptr<MemTracker> MemTracker::Create(
    std::string name, std::shared_ptr<MemTracker> parent, int64_t limit) {
  // Not make_shared: the constructor is private and the control block being
  // separate is irrelevant at tracker creation rates (a handful per job).
  return std::shared_ptr<MemTracker>(
      new MemTracker(std::move(name), std::move(parent), limit));
}

void MemTracker::Consume(int64_t bytes) {
  if (bytes == 0) return;
  for (MemTracker* t = this; t != nullptr; t = t->parent_.get()) {
    const int64_t now =
        t->consumed_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (bytes > 0) t->UpdatePeak(now);
  }
}

Status MemTracker::TryConsume(int64_t bytes) {
  if (bytes <= 0) {
    Consume(bytes);
    return Status::OK();
  }
  // Optimistically commit level by level; on the first limit breach, undo
  // the prefix (including the breaching level). Concurrent TryConsume calls
  // may transiently overshoot and both roll back — that conservative race
  // only ever rejects, never silently exceeds a budget.
  MemTracker* failed = nullptr;
  int64_t failed_total = 0;
  for (MemTracker* t = this; t != nullptr; t = t->parent_.get()) {
    const int64_t now =
        t->consumed_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (t->limit_ > 0 && now > t->limit_) {
      failed = t;
      failed_total = now;
      break;
    }
    t->UpdatePeak(now);
  }
  if (failed == nullptr) return Status::OK();
  for (MemTracker* t = this;; t = t->parent_.get()) {
    t->consumed_.fetch_sub(bytes, std::memory_order_relaxed);
    if (t == failed) break;
  }
  return Status::ResourceExhausted(StrCat(
      "memory budget exceeded: tracker '", failed->name_, "' needs ",
      failed_total, " bytes (request ", bytes, ") but is limited to ",
      failed->limit_, " bytes"));
}

std::string NodeTrackerName(int node) { return StrCat("node", node); }

std::string JobTrackerName(int64_t instance, int node) {
  return StrCat("job", instance, "@node", node);
}

}  // namespace obs
}  // namespace clydesdale
