#ifndef CLYDESDALE_OBS_MEM_TRACKER_H_
#define CLYDESDALE_OBS_MEM_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/mem.h"
#include "common/status.h"

namespace clydesdale {
namespace obs {

/// Hierarchical memory accounting (cluster → node → job@node → attempt),
/// modeled on Impala's MemTracker. Consume/Release walk the parent chain
/// with relaxed atomics — no locks on the hot path — and every level keeps
/// a high-water mark. A tracker with limit > 0 turns TryConsume into
/// budget enforcement: the request is checked against every limited level
/// up the chain and rolled back completely on a breach, so a rejected
/// consumer observes the same tracked totals as if it never asked.
///
/// Ownership: trackers are shared_ptr-only (Create) and each child holds a
/// strong reference to its parent. Consumers that charge a tracker keep it
/// alive through ScopedMemConsumer, so releases during late teardown (dim
/// tables dropped by scratch GC after the job runner is gone) always find a
/// live chain.
class MemTracker final : public MemReporter {
 public:
  static std::shared_ptr<MemTracker> Create(
      std::string name, std::shared_ptr<MemTracker> parent = nullptr,
      int64_t limit = 0);

  /// Adds `bytes` (may be negative) to this tracker and every ancestor.
  void Consume(int64_t bytes) override;
  void Release(int64_t bytes) override { Consume(-bytes); }

  /// Consume that respects limits: commits on every level or on none.
  /// Returns ResourceExhausted naming the limiting tracker on a breach.
  Status TryConsume(int64_t bytes);

  int64_t consumed() const {
    return consumed_.load(std::memory_order_relaxed);
  }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t limit() const { return limit_; }
  const std::string& name() const { return name_; }
  const std::shared_ptr<MemTracker>& parent() const { return parent_; }

 private:
  MemTracker(std::string name, std::shared_ptr<MemTracker> parent,
             int64_t limit)
      : name_(std::move(name)), parent_(std::move(parent)), limit_(limit) {}

  void UpdatePeak(int64_t observed) {
    int64_t p = peak_.load(std::memory_order_relaxed);
    while (observed > p &&
           !peak_.compare_exchange_weak(p, observed,
                                        std::memory_order_relaxed)) {
    }
  }

  const std::string name_;
  const std::shared_ptr<MemTracker> parent_;
  const int64_t limit_;
  std::atomic<int64_t> consumed_{0};
  std::atomic<int64_t> peak_{0};
};

/// Canonical tracker names for the fixed levels of the tree. The per-node
/// memory gauges (cluster_metrics.h kMetricMem*) sample trackers created
/// with exactly these names; scripts/check_mem_gauges.sh asserts the two
/// stay in sync.
std::string NodeTrackerName(int node);
std::string JobTrackerName(int64_t instance, int node);

/// RAII consumer against one tracker: releases exactly what it consumed on
/// destruction (or ReleaseAll), so no error path can leak tracked bytes.
/// Null-tracker consumers are no-ops everywhere — consumers stay oblivious
/// to whether tracking is enabled.
class ScopedMemConsumer {
 public:
  ScopedMemConsumer() = default;
  explicit ScopedMemConsumer(std::shared_ptr<MemTracker> tracker)
      : tracker_(std::move(tracker)) {}
  ~ScopedMemConsumer() { ReleaseAll(); }

  ScopedMemConsumer(const ScopedMemConsumer&) = delete;
  ScopedMemConsumer& operator=(const ScopedMemConsumer&) = delete;
  ScopedMemConsumer(ScopedMemConsumer&& other) noexcept
      : tracker_(std::move(other.tracker_)), consumed_(other.consumed_) {
    other.tracker_ = nullptr;
    other.consumed_ = 0;
  }
  ScopedMemConsumer& operator=(ScopedMemConsumer&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      tracker_ = std::move(other.tracker_);
      consumed_ = other.consumed_;
      other.tracker_ = nullptr;
      other.consumed_ = 0;
    }
    return *this;
  }

  void Add(int64_t bytes) {
    if (tracker_ == nullptr || bytes == 0) return;
    tracker_->Consume(bytes);
    consumed_ += bytes;
  }

  /// Limit-checked Add: on ResourceExhausted nothing was consumed.
  Status TryAdd(int64_t bytes) {
    if (tracker_ == nullptr || bytes == 0) return Status::OK();
    CLY_RETURN_IF_ERROR(tracker_->TryConsume(bytes));
    consumed_ += bytes;
    return Status::OK();
  }

  /// Consume or release the delta that moves this consumer's charge to
  /// `target_bytes` — for consumers that only know their current footprint
  /// (container capacities), not individual allocations.
  void SyncTo(int64_t target_bytes) { Add(target_bytes - consumed_); }

  void ReleaseAll() {
    if (tracker_ != nullptr && consumed_ != 0) {
      tracker_->Release(consumed_);
    }
    consumed_ = 0;
  }

  int64_t consumed() const { return consumed_; }
  int64_t peak() const { return tracker_ == nullptr ? 0 : tracker_->peak(); }
  const std::shared_ptr<MemTracker>& tracker() const { return tracker_; }

 private:
  std::shared_ptr<MemTracker> tracker_;
  int64_t consumed_ = 0;
};

}  // namespace obs
}  // namespace clydesdale

#endif  // CLYDESDALE_OBS_MEM_TRACKER_H_
