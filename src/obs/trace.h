#ifndef CLYDESDALE_OBS_TRACE_H_
#define CLYDESDALE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace clydesdale {
namespace obs {

/// One finished span. Timestamps are microseconds relative to the owning
/// TraceRecorder's creation (one recorder per job, so traces start at 0).
struct SpanRecord {
  std::string name;             ///< e.g. "map-task", "probe", "hash-build"
  const char* category = "";    ///< "job" | "phase" | "task" | "stage"
  int64_t start_us = 0;
  int64_t dur_us = 0;
  int task = -1;                ///< task index, -1 for job/phase spans
  int node = -1;                ///< node id, -1 when not node-bound
  int tid = 0;                  ///< recorder-assigned dense thread id
  int depth = 0;                ///< nesting depth within the thread at start

  int64_t end_us() const { return start_us + dur_us; }
};

/// Thread-safe span sink with per-thread buffers: starting/ending a span
/// touches only thread-private state, so the hot path takes no lock (the
/// recorder mutex is held once per thread, at buffer registration). Spans
/// are unbounded in-memory; Drain() after all producers stopped.
///
/// Disabled tracing is represented by a null recorder: Span's constructor
/// against nullptr is a couple of stores, so instrumentation can stay in
/// place unconditionally.
class TraceRecorder {
 public:
  TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since this recorder was created (steady clock).
  int64_t NowMicros() const;

  /// Moves out every recorded span, sorted by (start, longer-first) so
  /// parents precede their children. Call only after all span-producing
  /// threads have finished (joined); concurrent Drain is not supported.
  std::vector<SpanRecord> Drain();

  /// Spans recorded so far. Like Drain, only meaningful at quiescence.
  size_t num_spans() const;

 private:
  friend class Span;

  struct ThreadBuffer {
    std::vector<SpanRecord> spans;
    int tid = 0;
    int depth = 0;  ///< open-span nesting of the owning thread
  };

  /// This thread's buffer, registering it on first use. The returned
  /// pointer is owned by the recorder and stable until destruction.
  ThreadBuffer* BufferForThisThread();

  /// Distinguishes this recorder from any earlier one whose buffer a thread
  /// may still have cached in its thread_local slot (monotone, never
  /// reused — same idiom as mr::ShardedCollector).
  const uint64_t id_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: records [construction, destruction) into `recorder`, or does
/// nothing when `recorder` is null. Must be started and ended on the same
/// thread (the span lives in that thread's buffer).
class Span {
 public:
  Span(TraceRecorder* recorder, std::string name, const char* category,
       int task = -1, int node = -1);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span early; the destructor becomes a no-op. Idempotent.
  void End();

 private:
  TraceRecorder* recorder_;
  TraceRecorder::ThreadBuffer* buffer_ = nullptr;
  SpanRecord record_;
};

}  // namespace obs
}  // namespace clydesdale

#endif  // CLYDESDALE_OBS_TRACE_H_
