#ifndef CLYDESDALE_OBS_HISTOGRAM_H_
#define CLYDESDALE_OBS_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace clydesdale {
namespace obs {

/// HDR-style fixed-bucket histogram for non-negative int64 values.
///
/// Values < 32 get exact unit buckets; above that each power-of-two range
/// is split into 32 sub-buckets, giving a worst-case quantile error of
/// ~3% across the full int64 range with a fixed ~2K-bucket footprint and
/// O(1) Record(). Thread-safe; for hot paths prefer recording into a
/// task-local Histogram and merging once via MergeFrom().
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Record(int64_t value);

  int64_t Count() const;
  int64_t Sum() const;
  int64_t Min() const;  ///< smallest recorded value (0 when empty)
  int64_t Max() const;  ///< largest recorded value (0 when empty)
  double Mean() const;  ///< 0 when empty

  /// Value at quantile q in [0, 1] (e.g. 0.95): the lower bound of the
  /// bucket holding the q-th recorded value, clamped to [Min, Max] so
  /// exact small counts round-trip. Returns 0 when empty.
  int64_t Percentile(double q) const;

  /// Accumulates every bucket of `other` into this histogram.
  void MergeFrom(const Histogram& other);

  /// "count=12 mean=3.1 p50=3 p95=7 p99=7 max=9" (or "count=0").
  std::string ToString() const;

 private:
  // 32 unit buckets + 59 power-of-two ranges x 32 sub-buckets.
  static constexpr int kSubBuckets = 32;
  static constexpr int kNumBuckets = kSubBuckets + 59 * kSubBuckets;

  static int BucketFor(int64_t value);
  static int64_t BucketLowerBound(int bucket);

  int64_t PercentileLocked(double q) const;

  mutable std::mutex mu_;
  std::vector<int64_t> buckets_;  ///< lazily sized to kNumBuckets
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Named histograms for a job, mirroring how `mr::Counters` maps names to
/// totals. Get() lazily creates; pointers remain valid for the registry's
/// lifetime (histograms are never removed).
class HistogramRegistry {
 public:
  HistogramRegistry() = default;
  HistogramRegistry(const HistogramRegistry& other);
  HistogramRegistry& operator=(const HistogramRegistry& other);

  /// The histogram registered under `name`, creating it if absent.
  Histogram* Get(const std::string& name);

  /// Null when `name` was never recorded to.
  const Histogram* Find(const std::string& name) const;

  /// Name -> snapshot, sorted by name.
  std::map<std::string, Histogram> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace clydesdale

#endif  // CLYDESDALE_OBS_HISTOGRAM_H_
