// Closed-loop serving benchmark for the resident query-serving mode
// (DESIGN.md §15): N simulated clients replay a zipfian-skewed mix of the 13
// SSB query shapes against one long-lived QueryServer, each client issuing
// its next query as soon as the previous one returns.
//
// Three closed-loop passes at identical concurrency, so the latency deltas
// isolate the caches rather than queueing effects:
//   cold  — the same stream against a per-query ClydesdaleEngine with no
//           cache: every query pays the full dimension build (the paper's
//           per-query star join, the serving mode's baseline);
//   warm  — against a primed QueryServer with the cross-query DimHashTable
//           cache only (result cache off), measuring the probe-only speedup;
//   warm+results — against a primed QueryServer with the exact-repeat result
//           cache on, the serving mode as shipped.
// Before any timing, a sequential pass checks every shape byte-identical
// between a cache-cold QueryServer and the per-query engine — the
// correctness gate.
//
// With CLY_SERVING_JSON set, writes p50/p95/p99 latency per pass, the
// dim-cache hit rate, result-cache hit rate, and the byte-identity verdict;
// run_benches.sh publishes it as BENCH_serving.json and fails if the fields
// are missing. CLY_SERVING_CLIENTS / CLY_SERVING_QUERIES (per client) /
// CLY_SERVING_ZIPF tune the loop.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "obs/histogram.h"
#include "serving/query_server.h"

using namespace clydesdale;  // NOLINT(build/namespaces)

namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atoll(env) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atof(env) : fallback;
}

/// Zipfian CDF over ranks 1..n with exponent s: P(k) proportional to k^-s.
std::vector<double> ZipfCdf(size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

size_t ZipfDraw(const std::vector<double>& cdf, Random* rng) {
  const double u = rng->NextDouble();
  for (size_t k = 0; k < cdf.size(); ++k) {
    if (u <= cdf[k]) return k;
  }
  return cdf.size() - 1;
}

struct PassStats {
  obs::Histogram latency_micros;
  double wall_seconds = 0;
};

double PercentileMs(const obs::Histogram& h, double q) {
  return static_cast<double>(h.Percentile(q)) / 1000.0;
}

using Executor =
    std::function<Result<core::QueryResult>(const core::StarQuerySpec&)>;

/// The closed loop: `clients` threads, each drawing `queries_each` shapes
/// zipfian-skewed and executing them back to back. Every pass replays the
/// exact same per-client query streams (same seeds), so cold and warm time
/// identical work.
PassStats RunClosedLoop(const Executor& execute,
                        const std::vector<core::StarQuerySpec>& shapes,
                        const std::vector<double>& cdf, int clients,
                        int queries_each, uint64_t seed_base) {
  PassStats pass;
  std::vector<obs::Histogram> per_client(static_cast<size_t>(clients));
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Random rng(seed_base + static_cast<uint64_t>(c));
      for (int q = 0; q < queries_each; ++q) {
        const core::StarQuerySpec& spec = shapes[ZipfDraw(cdf, &rng)];
        Stopwatch sw;
        auto result = execute(spec);
        CLY_CHECK(result.ok());
        per_client[static_cast<size_t>(c)].Record(
            static_cast<int64_t>(sw.ElapsedSeconds() * 1e6));
      }
    });
  }
  for (auto& t : threads) t.join();
  pass.wall_seconds = wall.ElapsedSeconds();
  for (const obs::Histogram& h : per_client) {
    pass.latency_micros.MergeFrom(h);
  }
  return pass;
}

void PrintPass(const char* name, const PassStats& pass) {
  std::printf("%-14s %5lld queries  p50 %7.2f ms  p95 %7.2f ms  "
              "p99 %7.2f ms  (%.2fs wall)\n",
              name, static_cast<long long>(pass.latency_micros.Count()),
              PercentileMs(pass.latency_micros, 0.50),
              PercentileMs(pass.latency_micros, 0.95),
              PercentileMs(pass.latency_micros, 0.99), pass.wall_seconds);
}

void EmitPass(std::FILE* out, const char* name, const PassStats& pass,
              bool trailing_comma) {
  std::fprintf(out,
               "  \"%s\": {\"queries\": %lld, \"p50_ms\": %.3f, "
               "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"mean_ms\": %.3f, "
               "\"wall_seconds\": %.3f}%s\n",
               name, static_cast<long long>(pass.latency_micros.Count()),
               PercentileMs(pass.latency_micros, 0.50),
               PercentileMs(pass.latency_micros, 0.95),
               PercentileMs(pass.latency_micros, 0.99),
               pass.latency_micros.Mean() / 1000.0, pass.wall_seconds,
               trailing_comma ? "," : "");
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::LoadBenchEnv();
  const std::vector<core::StarQuerySpec> shapes = ssb::AllQueries();

  const int clients = static_cast<int>(EnvInt("CLY_SERVING_CLIENTS", 4));
  const int queries_each =
      static_cast<int>(EnvInt("CLY_SERVING_QUERIES", 32));
  const double zipf_s = EnvDouble("CLY_SERVING_ZIPF", 1.1);
  const std::vector<double> cdf = ZipfCdf(shapes.size(), zipf_s);

  std::printf("serving closed loop: sf=%.3f, %d clients x %d queries, "
              "zipf s=%.2f over %zu shapes\n\n",
              bench::MeasurementScaleFactor(), clients, queries_each, zipf_s,
              shapes.size());

  // --- byte-identity gate ---------------------------------------------------
  // Every shape, run cache-cold through the server, must be byte-identical
  // to the per-query engine without any cache.
  serving::QueryServerOptions options;
  options.result_cache_entries = 0;
  serving::QueryServer server(env.cluster.get(), env.dataset.star, options);
  core::ClydesdaleEngine direct(env.cluster.get(), env.dataset.star, {});

  bool byte_identical = true;
  for (const core::StarQuerySpec& spec : shapes) {
    server.InvalidateAll();
    auto served = server.Execute(spec);
    CLY_CHECK(served.ok());
    auto standalone = direct.Execute(spec);
    CLY_CHECK(standalone.ok());
    if (served->rows != standalone->rows) {
      byte_identical = false;
      std::fprintf(stderr, "BYTE-IDENTITY FAILURE on %s\n", spec.id.c_str());
    }
  }
  CLY_CHECK(byte_identical);

  // --- cold closed loop: the per-query engine, no cache ---------------------
  const PassStats cold = RunClosedLoop(
      [&](const core::StarQuerySpec& spec) { return direct.Execute(spec); },
      shapes, cdf, clients, queries_each, /*seed_base=*/1234);

  // --- warm closed loop, dim cache only ------------------------------------
  server.InvalidateAll();
  for (const core::StarQuerySpec& spec : shapes) {
    CLY_CHECK(server.Execute(spec).ok());  // prime every shape's tables
  }
  const core::DimTableCacheStats before = server.dim_cache()->stats();
  const PassStats warm = RunClosedLoop(
      [&](const core::StarQuerySpec& spec) { return server.Execute(spec); },
      shapes, cdf, clients, queries_each, /*seed_base=*/1234);
  const core::DimTableCacheStats after = server.dim_cache()->stats();
  const int64_t loop_hits = after.hits - before.hits;
  const int64_t loop_misses = after.misses - before.misses;
  const double hit_rate =
      loop_hits + loop_misses > 0
          ? static_cast<double>(loop_hits) /
                static_cast<double>(loop_hits + loop_misses)
          : 0.0;

  // --- warm closed loop, result cache on (serving mode as shipped) ---------
  serving::QueryServer replay_server(env.cluster.get(), env.dataset.star, {});
  for (const core::StarQuerySpec& spec : shapes) {
    CLY_CHECK(replay_server.Execute(spec).ok());
  }
  const PassStats replay = RunClosedLoop(
      [&](const core::StarQuerySpec& spec) {
        return replay_server.Execute(spec);
      },
      shapes, cdf, clients, queries_each, /*seed_base=*/1234);
  const serving::QueryServerStats replay_stats = replay_server.stats();
  const double result_hit_rate =
      static_cast<double>(replay_stats.result_cache_hits) /
      static_cast<double>(clients * queries_each);

  PrintPass("cold", cold);
  PrintPass("warm", warm);
  PrintPass("warm+results", replay);
  const double speedup_p50 =
      PercentileMs(cold.latency_micros, 0.50) /
      std::max(0.001, PercentileMs(warm.latency_micros, 0.50));
  std::printf("\ndim cache: %lld hits / %lld misses in the loop "
              "(hit rate %.1f%%), %lld evictions, %lld entries, %.1f KiB "
              "resident\n",
              static_cast<long long>(loop_hits),
              static_cast<long long>(loop_misses), 100 * hit_rate,
              static_cast<long long>(after.evictions),
              static_cast<long long>(after.entries),
              static_cast<double>(after.resident_bytes) / 1024.0);
  std::printf("result cache: %lld replays (hit rate %.1f%%)\n",
              static_cast<long long>(replay_stats.result_cache_hits),
              100 * result_hit_rate);
  std::printf("warm speedup: p50 %.2fx over cold\n", speedup_p50);

  // The whole point of the serving mode: warm queries must beat cold ones,
  // and the loop must actually have hit the cache.
  CLY_CHECK(hit_rate > 0);

  const char* json_path = std::getenv("CLY_SERVING_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    std::FILE* out = std::fopen(json_path, "w");
    CLY_CHECK(out != nullptr);
    std::fprintf(out,
                 "{\n  \"scale_factor\": %.4f,\n  \"shapes\": %zu,\n"
                 "  \"clients\": %d,\n  \"queries_per_client\": %d,\n"
                 "  \"zipf_s\": %.3f,\n  \"byte_identical\": %s,\n",
                 bench::MeasurementScaleFactor(), shapes.size(), clients,
                 queries_each, zipf_s, byte_identical ? "true" : "false");
    EmitPass(out, "cold", cold, /*trailing_comma=*/true);
    EmitPass(out, "warm", warm, /*trailing_comma=*/true);
    EmitPass(out, "warm_result_cache", replay, /*trailing_comma=*/true);
    std::fprintf(out,
                 "  \"warm_speedup_p50\": %.3f,\n"
                 "  \"dim_cache\": {\"hits\": %lld, \"misses\": %lld, "
                 "\"shared_builds\": %lld, \"evictions\": %lld, "
                 "\"hit_rate\": %.4f, \"resident_bytes\": %lld, "
                 "\"entries\": %lld},\n"
                 "  \"result_cache\": {\"hits\": %lld, \"hit_rate\": %.4f}\n"
                 "}\n",
                 speedup_p50, static_cast<long long>(loop_hits),
                 static_cast<long long>(loop_misses),
                 static_cast<long long>(after.shared_builds),
                 static_cast<long long>(after.evictions), hit_rate,
                 static_cast<long long>(after.resident_bytes),
                 static_cast<long long>(after.entries),
                 static_cast<long long>(replay_stats.result_cache_hits),
                 result_hit_rate);
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
