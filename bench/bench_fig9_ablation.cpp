// Reproduces paper Figure 9 (§6.5): the impact of turning off each of
// Clydesdale's techniques — block iteration, columnar storage, and
// multi-threaded map tasks — one at a time, on Cluster A at SF1000.

#include <cstdio>

#include "bench_common.h"

using namespace clydesdale;        // NOLINT(build/namespaces)
using namespace clydesdale::bench; // NOLINT(build/namespaces)

int main() {
  BenchEnv env = LoadBenchEnv();
  const sim::ClusterSpec spec = sim::ClusterSpec::ClusterA();
  const double target_sf = TargetScaleFactor();

  std::printf(
      "Figure 9: Clydesdale feature ablation on Cluster A at SF%.0f "
      "(seconds; slowdown vs full system)\n\n",
      target_sf);
  std::printf("%-6s %-10s %-22s %-22s %-22s\n", "query", "full",
              "no block iteration", "no columnar", "no multithreading");

  sim::ModelOptions full;
  full.target_sf = target_sf;
  sim::ModelOptions no_block = full;
  no_block.block_iteration = false;
  sim::ModelOptions no_columnar = full;
  no_columnar.columnar = false;
  sim::ModelOptions no_mt = full;
  no_mt.multithreaded = false;

  double sums[3] = {0, 0, 0};
  double flight_sums[5][3] = {};
  int flight_counts[5] = {};
  int n = 0;

  for (const core::StarQuerySpec& query : ssb::AllQueries()) {
    auto m = sim::MeasureQuery(env.cluster.get(), env.dataset, query);
    CLY_CHECK(m.ok());
    auto base = sim::ModelClydesdale(spec, *m, full);
    auto nb = sim::ModelClydesdale(spec, *m, no_block);
    auto nc = sim::ModelClydesdale(spec, *m, no_columnar);
    auto nm = sim::ModelClydesdale(spec, *m, no_mt);
    CLY_CHECK(base.ok());
    CLY_CHECK(nb.ok());
    CLY_CHECK(nc.ok());
    CLY_CHECK(nm.ok());

    auto cell = [&](const sim::SimOutcome& o) {
      return Pad(StrCat(FormatDouble(o.seconds, 0), "  (",
                        FormatDouble(o.seconds / base->seconds, 1), "x)"),
                 -22);
    };
    std::printf("%-6s %-10s %s %s %s\n", query.id.c_str(),
                FormatDouble(base->seconds, 0).c_str(), cell(*nb).c_str(),
                cell(*nc).c_str(), cell(*nm).c_str());

    const double s[3] = {nb->seconds / base->seconds,
                         nc->seconds / base->seconds,
                         nm->seconds / base->seconds};
    const int flight = ssb::FlightOf(query.id);
    for (int k = 0; k < 3; ++k) {
      sums[k] += s[k];
      flight_sums[flight][k] += s[k];
    }
    ++flight_counts[flight];
    ++n;
  }

  std::printf("\naverage slowdowns: no-block %.1fx, no-columnar %.1fx, "
              "no-multithreading %.1fx\n",
              sums[0] / n, sums[1] / n, sums[2] / n);
  std::printf("paper (§6.5):      no-block 1.2x,  no-columnar 3.4x,  "
              "no-multithreading 2.4x\n\n");
  for (int f = 1; f <= 4; ++f) {
    std::printf("flight %d averages: no-block %.1fx, no-columnar %.1fx, "
                "no-multithreading %.1fx\n",
                f, flight_sums[f][0] / flight_counts[f],
                flight_sums[f][1] / flight_counts[f],
                flight_sums[f][2] / flight_counts[f]);
  }
  std::printf("paper highlights:  flight 2 no-columnar 3.8x; flight 4 "
              "no-columnar 2.0x; flight 1 no-MT 1.2x; flight 4 no-MT 4.5x\n");
  return 0;
}
