// Micro-benchmarks for the MapReduce substrate's shuffle path: map-output
// partitioning + sort, combiner folding, and row codec throughput.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/random.h"
#include "core/aggregation.h"
#include "mapreduce/engine.h"
#include "mapreduce/shuffle.h"
#include "storage/row_codec.h"

namespace clydesdale {
namespace mr {
namespace {

std::vector<KeyValue> MakeRecords(int n, int distinct_keys) {
  Random rng(11);
  std::vector<KeyValue> records;
  records.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    records.push_back(
        {Row({Value(static_cast<int32_t>(rng.Uniform(0, distinct_keys - 1))),
              Value("group")}),
         Row({Value(int64_t{1})})});
  }
  return records;
}

TaskContext MakeContext(MrCluster* cluster, const JobConf* conf,
                        Counters* counters) {
  return TaskContext(conf, cluster, 0, 0, 1,
                     std::make_shared<SharedJvmState>(), counters);
}

void SortAndMaybeCombine(benchmark::State& state, bool combine) {
  SetLogThreshold(LogLevel::kError);
  static MrCluster* const cluster = new MrCluster(ClusterOptions{});
  JobConf conf;
  Counters counters;
  // Arg 0 = rows through the buffer, arg 1 = distinct keys (sort/combine
  // cardinality). Both matter independently: rows drive volume, keys drive
  // comparison cost and combiner fold ratio.
  const auto records = MakeRecords(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  for (auto _ : state) {
    HashPartitioner partitioner;
    MapOutputBuffer buffer(&partitioner, 4);
    for (const KeyValue& kv : records) {
      CLY_CHECK_OK(buffer.Collect(kv.key, kv.value));
    }
    TaskContext context = MakeContext(cluster, &conf, &counters);
    core::AggReducer combiner(core::AggLayout::For(
        {{"n", Expr::Col("x"), core::AggKind::kSum}}));
    auto partitions = buffer.Finish(combine ? &combiner : nullptr, &context);
    CLY_CHECK(partitions.ok());
    benchmark::DoNotOptimize(partitions->size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}

void BM_MapOutputSort(benchmark::State& state) {
  SortAndMaybeCombine(state, false);
}
void BM_MapOutputSortCombine(benchmark::State& state) {
  SortAndMaybeCombine(state, true);
}
BENCHMARK(BM_MapOutputSort)
    ->Args({1000, 64})
    ->Args({100000, 64})
    ->Args({100000, 100000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MapOutputSortCombine)
    ->Args({1000, 64})
    ->Args({100000, 64})
    ->Args({100000, 100000})
    ->Unit(benchmark::kMillisecond);

void BM_RowEncodeDecode(benchmark::State& state) {
  auto schema = Schema::Make({{"a", TypeKind::kInt32, 4},
                              {"b", TypeKind::kInt64, 8},
                              {"c", TypeKind::kString, 12}});
  const Row row({Value(int32_t{42}), Value(int64_t{1} << 40),
                 Value("hello row")});
  storage::ByteWriter writer;
  Row decoded;
  for (auto _ : state) {
    writer.Clear();
    storage::EncodeRow(row, &writer);
    storage::ByteReader reader(writer.bytes());
    CLY_CHECK_OK(storage::DecodeRow(*schema, &reader, &decoded));
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowEncodeDecode);

void BM_TextParse(benchmark::State& state) {
  auto schema = Schema::Make({{"a", TypeKind::kInt32, 4},
                              {"b", TypeKind::kInt64, 8},
                              {"c", TypeKind::kString, 12}});
  const std::string line = "42|1099511627776|hello row";
  Row decoded;
  for (auto _ : state) {
    CLY_CHECK_OK(storage::ParseRowText(*schema, line, &decoded));
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextParse);

}  // namespace
}  // namespace mr
}  // namespace clydesdale
