// Design-choice ablations at the functional level (DESIGN.md §6): the
// engine's own knobs measured end-to-end on the in-process cluster —
// map-side aggregation vs per-row emit + combiner (shuffle volume),
// multi-split packing granularity, and the §5.1 staged-join fallback vs the
// single-job plan.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "core/clydesdale.h"
#include "core/staged_join.h"
#include "ssb/loader.h"
#include "ssb/queries.h"

namespace clydesdale {
namespace {

struct Env {
  Env() {
    SetLogThreshold(LogLevel::kError);
    mr::ClusterOptions copts;
    copts.num_nodes = 4;
    copts.map_slots_per_node = 2;
    copts.dfs_block_size = 256 * 1024;
    cluster = std::make_unique<mr::MrCluster>(copts);
    ssb::SsbLoadOptions load;
    load.scale_factor = 0.01;
    auto loaded = ssb::LoadSsb(cluster.get(), load);
    CLY_CHECK(loaded.ok());
    dataset = std::make_unique<ssb::SsbDataset>(std::move(*loaded));
  }
  std::unique_ptr<mr::MrCluster> cluster;
  std::unique_ptr<ssb::SsbDataset> dataset;
};

Env& SharedEnv() {
  static Env* const kEnv = new Env();
  return *kEnv;
}

void RunQuery(benchmark::State& state, const core::ClydesdaleOptions& options,
              const char* query_id) {
  Env& env = SharedEnv();
  auto spec = ssb::QueryById(query_id);
  CLY_CHECK(spec.ok());
  core::ClydesdaleEngine engine(env.cluster.get(), env.dataset->star, options);
  uint64_t shuffle = 0;
  for (auto _ : state) {
    auto result = engine.Execute(*spec);
    CLY_CHECK(result.ok());
    benchmark::DoNotOptimize(result->rows.size());
    for (const auto& report : result->stage_reports) {
      shuffle += report.TotalShuffleBytes();
    }
  }
  state.counters["shuffle_bytes"] =
      static_cast<double>(shuffle) / state.iterations();
}

void BM_Q31_MapSideAgg(benchmark::State& state) {
  RunQuery(state, {}, "Q3.1");
}
void BM_Q31_CombinerOnly(benchmark::State& state) {
  core::ClydesdaleOptions options;
  options.map_side_agg = false;  // emit per joined row; combine pre-shuffle
  RunQuery(state, options, "Q3.1");
}
BENCHMARK(BM_Q31_MapSideAgg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q31_CombinerOnly)->Unit(benchmark::kMillisecond);

void BM_Q21_MultiSplitPacking(benchmark::State& state) {
  core::ClydesdaleOptions options;
  options.multisplit_size = state.range(0);  // 0 = whole node in one task
  RunQuery(state, options, "Q2.1");
}
BENCHMARK(BM_Q21_MultiSplitPacking)
    ->Arg(0)
    ->Arg(4)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_Q41_SingleJob(benchmark::State& state) {
  RunQuery(state, {}, "Q4.1");
}
void BM_Q41_StagedFallback(benchmark::State& state) {
  Env& env = SharedEnv();
  auto spec = ssb::QueryById("Q4.1");
  CLY_CHECK(spec.ok());
  // Budget that fits each dimension alone: one join group per dimension,
  // four MR jobs with HDFS round-trips between them.
  uint64_t max_single = 0;
  for (const core::DimJoinSpec& join : spec->dims) {
    auto dim = env.dataset->star.dim(join.dimension);
    CLY_CHECK(dim.ok());
    max_single = std::max(max_single,
                          core::EstimateDimHashBytes(**dim, join));
  }
  auto star = std::make_shared<const core::StarSchema>(env.dataset->star);
  for (auto _ : state) {
    auto result = core::ExecuteStagedStarJoin(env.cluster.get(), star, *spec,
                                              {}, max_single);
    CLY_CHECK(result.ok());
    benchmark::DoNotOptimize(result->rows.size());
  }
}
BENCHMARK(BM_Q41_SingleJob)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q41_StagedFallback)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace clydesdale
