// Reproduces paper Table 1 (§6.6): TestDFSIO aggregate read/write bandwidth
// on both clusters, next to the raw disk aggregate — HDFS delivers only a
// fraction of the raw hardware. Also runs the *functional* TestDFSIO against
// the simulated DFS to sanity-check byte accounting.

#include <cstdio>

#include "bench_common.h"
#include "hdfs/dfs.h"

using namespace clydesdale;        // NOLINT(build/namespaces)
using namespace clydesdale::bench; // NOLINT(build/namespaces)

namespace {

/// Functional TestDFSIO on the in-process DFS: each "map task" writes one
/// file, then reads files back; verifies the replication and accounting.
void FunctionalTestDfsIo() {
  hdfs::DfsOptions options;
  options.num_nodes = 4;
  options.block_size = 1 << 20;
  options.replication = 3;
  hdfs::MiniDfs dfs(options);

  const size_t file_bytes = 4 << 20;
  std::vector<uint8_t> payload(file_bytes, 0x5a);
  for (int n = 0; n < options.num_nodes; ++n) {
    auto writer = dfs.Create(StrCat("/testdfsio/file", n), "", n);
    CLY_CHECK(writer.ok());
    CLY_CHECK_OK((*writer)->Append(payload));
    CLY_CHECK_OK((*writer)->Close());
  }
  hdfs::IoStats stats;
  for (int n = 0; n < options.num_nodes; ++n) {
    auto reader = dfs.Open(StrCat("/testdfsio/file", n), n, &stats);
    CLY_CHECK(reader.ok());
    std::vector<uint8_t> buf(file_bytes);
    CLY_CHECK_OK((*reader)->PRead(0, buf.data(), buf.size()));
  }
  std::printf(
      "functional check: wrote %s x%d files (x%d replicas = %s on datanodes), "
      "read back %s (%s local)\n\n",
      HumanBytes(file_bytes).c_str(), options.num_nodes, options.replication,
      HumanBytes(dfs.TotalIo().bytes_written).c_str(),
      HumanBytes(stats.TotalRead()).c_str(),
      HumanBytes(stats.local_bytes_read).c_str());
}

}  // namespace

int main() {
  std::printf("Table 1: TestDFSIO bandwidth (aggregate MB/s across the "
              "cluster)\n\n");
  FunctionalTestDfsIo();

  std::printf("%-9s %-14s %-15s %-16s %s\n", "cluster", "HDFS read",
              "HDFS write", "raw disk aggr.", "read fraction of raw");
  for (const sim::ClusterSpec& spec :
       {sim::ClusterSpec::ClusterA(), sim::ClusterSpec::ClusterB()}) {
    const sim::DfsIoModel model = sim::ModelTestDfsIo(spec, 1000.0, 2);
    std::printf("%-9s %-14.0f %-15.0f %-16.0f %.0f%%\n", spec.name.c_str(),
                model.read_mb_per_s, model.write_mb_per_s,
                model.raw_disk_mb_per_s,
                100.0 * model.read_mb_per_s / model.raw_disk_mb_per_s);
  }
  std::printf(
      "\npaper §6.6: per-node raw disk 560 MB/s (A) and 280+ MB/s (B); HDFS "
      "delivered only a fraction of it (the map-side scan saw ~67 MB/s per "
      "node on A).\n");
  return 0;
}
