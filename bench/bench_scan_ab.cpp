// A/B benchmark for the CIF scan: the same rows are written three times —
// CIF v1 (plain blocks, eager decode), CIF v2 (zone maps + late
// materialization), and CIF v3 (v2 plus per-block lightweight encodings:
// RLE / bit-pack / frame-of-reference integers, dictionary + RLE-of-codes
// strings) — then scanned several ways.
//
// The v1-vs-v2 cases measure late materialization: full (every column),
// projected (a narrow column subset), and predicate (a ~5%-selectivity
// clustered range). The v2-vs-v3 cases measure compressed execution on
// SSB-shaped columns (orderdate in chronological runs -> RLE, quantity and
// discount in small domains -> bit-pack, revenue incompressible -> plain):
// an encoded full scan, and an SSB Q1.1-shaped predicate (orderdate range
// AND discount BETWEEN 1 AND 3 AND quantity < 25) evaluated in the
// compressed domain. A final pass re-runs the v3 predicate scan with the
// double-buffered block prefetcher and asserts byte-identical survivors.
// Every predicate case filters engine-side with the bound predicates after
// the scan, matching the engine's belt-and-braces re-check.
//
// With CLY_SCAN_JSON set, writes the results (rows/s, per-pass wall
// seconds, speedups, pruning stats, compression ratio, per-encoding block
// counts) as JSON; run_benches.sh publishes it as BENCH_scan.json and
// fails if the encoded fields are missing.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "hdfs/dfs.h"
#include "schema/expr.h"
#include "schema/row_batch.h"
#include "storage/column_codec.h"
#include "storage/scan_spec.h"
#include "storage/table_format.h"

using namespace clydesdale;  // NOLINT(build/namespaces)

namespace {

SchemaPtr FactSchema() {
  return Schema::Make({{"id", TypeKind::kInt32, 4},
                       {"orderdate", TypeKind::kInt64, 8},
                       {"quantity", TypeKind::kInt32, 4},
                       {"discount", TypeKind::kInt32, 4},
                       {"revenue", TypeKind::kInt64, 8},
                       {"mode", TypeKind::kString, 10}});
}

// Rows per distinct orderdate: long chronological runs, the shape a
// rolled-in fact table has, so v3 stores orderdate blocks as RLE.
constexpr int64_t kRowsPerDate = 4000;

Row MakeRow(int64_t i) {
  static const char* kModes[] = {"AIR",      "RAIL",  "SHIP",    "TRUCK",
                                 "PIPELINE", "BARGE", "COURIER", "DRONE"};
  const uint64_t h = static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ull;
  return Row({Value(static_cast<int32_t>(i)),
              Value(INT64_C(19920101) + i / kRowsPerDate),
              Value(static_cast<int32_t>(1 + h % 50)),
              Value(static_cast<int32_t>((h >> 8) % 11)),
              Value(static_cast<int64_t>(h)),  // incompressible: stays plain
              Value(kModes[i % 8])});
}

storage::TableDesc WriteTable(hdfs::MiniDfs* dfs, const std::string& path,
                              int64_t rows, int64_t rows_per_split,
                              int cif_version) {
  storage::TableDesc desc;
  desc.path = path;
  desc.format = storage::kFormatCif;
  desc.schema = FactSchema();
  desc.rows_per_split = static_cast<uint64_t>(rows_per_split);
  desc.cif_version = cif_version;
  auto writer = storage::OpenTableWriter(dfs, desc);
  CLY_CHECK(writer.ok());
  for (int64_t i = 0; i < rows; ++i) {
    CLY_CHECK_OK((*writer)->Append(MakeRow(i)));
  }
  CLY_CHECK_OK((*writer)->Close());
  auto loaded = storage::LoadTableDesc(*dfs, path);
  CLY_CHECK(loaded.ok());
  return *loaded;
}

/// One full pass over the table; returns the number of surviving rows.
/// `engine_preds`, when non-empty, are applied batch-wise after the scan —
/// the engine-side re-check every version pays.
int64_t ScanPass(const hdfs::MiniDfs& dfs, const storage::TableDesc& desc,
                 const std::vector<storage::StorageSplit>& splits,
                 const storage::ScanOptions& base,
                 const std::vector<const BoundPredicate*>& engine_preds,
                 storage::ScanStats* stats) {
  int64_t rows_out = 0;
  std::vector<uint8_t> sel;
  for (const storage::StorageSplit& split : splits) {
    storage::ScanOptions options = base;
    options.scan_stats = stats;
    auto reader = storage::OpenSplitBatchReader(dfs, desc, split, options);
    CLY_CHECK(reader.ok());
    RowBatch batch((*reader)->output_schema());
    while (true) {
      auto more = (*reader)->NextBatch(&batch, 4096);
      CLY_CHECK(more.ok());
      if (!*more) break;
      const int64_t n = batch.num_rows();
      if (engine_preds.empty()) {
        rows_out += n;
        continue;
      }
      sel.assign(static_cast<size_t>(n), 1);
      for (const BoundPredicate* pred : engine_preds) {
        pred->EvalBatch(batch, &sel);
      }
      for (int64_t i = 0; i < n; ++i) rows_out += sel[static_cast<size_t>(i)];
    }
  }
  return rows_out;
}

/// Hash-set membership filter standing in for a built dimension hash table
/// (the engine wraps DimHashTables in exactly this shape to push the
/// semi-join below the scan). Costs one hash probe per Contains, like the
/// real thing.
class SetKeyFilter final : public storage::ScanKeyFilter {
 public:
  explicit SetKeyFilter(std::unordered_set<int64_t> keys)
      : keys_(std::move(keys)) {
    for (int64_t k : keys_) {
      lo_ = std::min(lo_, k);
      hi_ = std::max(hi_, k);
    }
  }
  bool Contains(int64_t key) const override { return keys_.count(key) > 0; }
  bool RangeMightMatch(int64_t lo, int64_t hi) const override {
    return !keys_.empty() && !(hi < lo_ || lo > hi_);
  }

 private:
  std::unordered_set<int64_t> keys_;
  int64_t lo_ = INT64_MAX;
  int64_t hi_ = INT64_MIN;
};

struct CaseResult {
  double wall_seconds = 0;   // per pass
  double rows_per_sec = 0;   // table rows scanned per second
  int64_t rows_out = 0;
  storage::ScanStats stats;  // last pass (late path only)
};

CaseResult TimeCase(const hdfs::MiniDfs& dfs, const storage::TableDesc& desc,
                    const std::vector<storage::StorageSplit>& splits,
                    int64_t table_rows, const storage::ScanOptions& base,
                    const std::vector<const BoundPredicate*>& engine_preds) {
  CaseResult result;
  // Warmup: page in the column files and settle allocators.
  ScanPass(dfs, desc, splits, base, engine_preds, nullptr);
  Stopwatch sw;
  int passes = 0;
  do {
    result.stats = storage::ScanStats();
    result.rows_out =
        ScanPass(dfs, desc, splits, base, engine_preds, &result.stats);
    ++passes;
  } while (sw.ElapsedSeconds() < 0.3);
  const double elapsed = sw.ElapsedSeconds();
  result.wall_seconds = elapsed / passes;
  result.rows_per_sec = static_cast<double>(table_rows) * passes / elapsed;
  return result;
}

void PrintCase(const char* name, const char* a_tag, const CaseResult& a,
               const char* b_tag, const CaseResult& b) {
  std::printf("%-20s %s %10.2f Mrows/s   %s %10.2f Mrows/s   %s/%s %5.2fx\n",
              name, a_tag, a.rows_per_sec / 1e6, b_tag, b.rows_per_sec / 1e6,
              b_tag, a_tag, b.rows_per_sec / a.rows_per_sec);
}

void EmitCase(std::FILE* out, const char* name, const char* a_tag,
              const CaseResult& a, const char* b_tag, const CaseResult& b,
              const char* speedup_key) {
  std::fprintf(out,
               "  \"%s\": {\n"
               "    \"%s\": {\"rows_per_sec\": %.1f, \"wall_seconds\": %.6f, "
               "\"rows_out\": %lld},\n"
               "    \"%s\": {\"rows_per_sec\": %.1f, \"wall_seconds\": %.6f, "
               "\"rows_out\": %lld, \"blocks_skipped\": %llu, "
               "\"rows_pruned\": %llu},\n"
               "    \"%s\": %.3f\n"
               "  },\n",
               name, a_tag, a.rows_per_sec, a.wall_seconds,
               static_cast<long long>(a.rows_out), b_tag, b.rows_per_sec,
               b.wall_seconds, static_cast<long long>(b.rows_out),
               static_cast<unsigned long long>(b.stats.blocks_skipped),
               static_cast<unsigned long long>(b.stats.rows_pruned),
               speedup_key, b.rows_per_sec / a.rows_per_sec);
}

}  // namespace

int main() {
  SetLogThreshold(LogLevel::kWarning);
  const char* sf_env = std::getenv("CLY_BENCH_SF");
  const double sf = sf_env != nullptr ? std::atof(sf_env) : 0.02;
  const int64_t rows =
      std::max<int64_t>(20000, static_cast<int64_t>(sf * 2e6));
  // At least ~20 splits so zone-map skipping has blocks to refute even at
  // smoke scale; capped so the widest column (8 B/row plus the footer)
  // stays within one 256 KiB DFS block per split.
  const int64_t rows_per_split =
      std::min<int64_t>(16384, std::max<int64_t>(1024, rows / 32));

  hdfs::DfsOptions dfs_options;
  dfs_options.num_nodes = 2;
  dfs_options.block_size = 256 * 1024;
  dfs_options.replication = 1;
  hdfs::MiniDfs dfs(dfs_options);

  const storage::TableDesc v1 =
      WriteTable(&dfs, "/scan_ab_v1", rows, rows_per_split, /*cif_version=*/1);
  const storage::TableDesc v2 =
      WriteTable(&dfs, "/scan_ab_v2", rows, rows_per_split, /*cif_version=*/2);
  const storage::TableDesc v3 =
      WriteTable(&dfs, "/scan_ab_v3", rows, rows_per_split, /*cif_version=*/3);
  auto v1_splits = storage::ListTableSplits(dfs, v1);
  auto v2_splits = storage::ListTableSplits(dfs, v2);
  auto v3_splits = storage::ListTableSplits(dfs, v3);
  CLY_CHECK(v1_splits.ok());
  CLY_CHECK(v2_splits.ok());
  CLY_CHECK(v3_splits.ok());

  // ~5% selectivity, clustered on the sequential id column — the shape a
  // date-range predicate over a chronologically rolled-in fact table has.
  const int64_t cutoff = rows / 20 - 1;
  Predicate::Ptr id_leaf =
      Predicate::Le("id", Value(static_cast<int32_t>(cutoff)));
  auto id_spec = std::make_shared<storage::ScanSpec>();
  id_spec->conjuncts.push_back(id_leaf);

  // SSB Q1.1 shape: a half-table orderdate range (zone-refutable in v2 and
  // v3 alike — the encoded win must come from elsewhere) AND two
  // small-domain leaves evaluated per packed code / per run in v3.
  const int64_t date_hi = INT64_C(19920101) + (rows / 2) / kRowsPerDate;
  std::vector<Predicate::Ptr> q11 = {
      Predicate::Le("orderdate", Value(date_hi)),
      Predicate::Between("discount", Value(int32_t{1}), Value(int32_t{3})),
      Predicate::Lt("quantity", Value(int32_t{25})),
  };
  auto q11_spec = std::make_shared<storage::ScanSpec>();
  for (const auto& leaf : q11) q11_spec->conjuncts.push_back(leaf);

  storage::ScanOptions full;
  storage::ScanOptions projected;
  projected.projection = {"revenue", "mode"};
  storage::ScanOptions predicate;
  predicate.projection = {"id", "revenue"};
  storage::ScanOptions predicate_pushed = predicate;
  predicate_pushed.scan_spec = id_spec;
  storage::ScanOptions q11_pushed;
  q11_pushed.projection = {"orderdate", "quantity", "discount", "revenue"};
  q11_pushed.scan_spec = q11_spec;
  storage::ScanOptions q11_prefetch = q11_pushed;
  q11_prefetch.prefetch = true;

  // SSB's date filter as the engine really executes it: the date-dimension
  // hash table pushed into the scan as a semi-join key filter on the fact's
  // orderdate FK. Every other date is a member, so zone maps cannot refute
  // whole blocks and the probing granularity is what's measured — per row
  // on v2's plain blocks, per run on v3's RLE blocks.
  const int64_t num_dates = (rows + kRowsPerDate - 1) / kRowsPerDate;
  std::unordered_set<int64_t> member_dates;
  for (int64_t d = 0; d < num_dates; d += 2) {
    member_dates.insert(INT64_C(19920101) + d);
  }
  auto keyfilter_spec = std::make_shared<storage::ScanSpec>();
  keyfilter_spec->key_filters.push_back(
      {"orderdate", std::make_shared<SetKeyFilter>(std::move(member_dates))});
  storage::ScanOptions keyfilter_pushed;
  keyfilter_pushed.projection = {"orderdate", "revenue"};
  keyfilter_pushed.scan_spec = keyfilter_spec;

  auto bound_one = [](const Predicate::Ptr& leaf, const SchemaPtr& schema) {
    auto bound = leaf->Bind(*schema);
    CLY_CHECK(bound.ok());
    return std::move(*bound);
  };
  const auto pred_schema = Schema::Make(
      {{"id", TypeKind::kInt32, 4}, {"revenue", TypeKind::kInt64, 8}});
  const auto id_bound = bound_one(id_leaf, pred_schema);
  const auto q11_schema = Schema::Make({{"orderdate", TypeKind::kInt64, 8},
                                        {"quantity", TypeKind::kInt32, 4},
                                        {"discount", TypeKind::kInt32, 4},
                                        {"revenue", TypeKind::kInt64, 8}});
  std::vector<std::shared_ptr<const BoundPredicate>> q11_bound_storage;
  std::vector<const BoundPredicate*> q11_bound;
  for (const auto& leaf : q11) {
    q11_bound_storage.push_back(bound_one(leaf, q11_schema));
    q11_bound.push_back(q11_bound_storage.back().get());
  }

  std::printf("CIF scan A/B: %lld rows, %zu splits, id-predicate "
              "selectivity %.1f%%\n\n",
              static_cast<long long>(rows), v2_splits->size(),
              100.0 * static_cast<double>(cutoff + 1) /
                  static_cast<double>(rows));

  const std::vector<const BoundPredicate*> no_preds;
  // --- late materialization: v1 vs v2 ---------------------------------------
  const CaseResult full_v1 =
      TimeCase(dfs, v1, *v1_splits, rows, full, no_preds);
  const CaseResult full_v2 =
      TimeCase(dfs, v2, *v2_splits, rows, full, no_preds);
  const CaseResult proj_v1 =
      TimeCase(dfs, v1, *v1_splits, rows, projected, no_preds);
  const CaseResult proj_v2 =
      TimeCase(dfs, v2, *v2_splits, rows, projected, no_preds);
  const CaseResult pred_v1 =
      TimeCase(dfs, v1, *v1_splits, rows, predicate, {id_bound.get()});
  const CaseResult pred_v2 =
      TimeCase(dfs, v2, *v2_splits, rows, predicate_pushed, {id_bound.get()});

  // --- compressed execution: v2 vs v3 ---------------------------------------
  const CaseResult enc_full_v2 =
      TimeCase(dfs, v2, *v2_splits, rows, full, no_preds);
  const CaseResult enc_full_v3 =
      TimeCase(dfs, v3, *v3_splits, rows, full, no_preds);
  const CaseResult enc_pred_v2 =
      TimeCase(dfs, v2, *v2_splits, rows, q11_pushed, q11_bound);
  const CaseResult enc_pred_v3 =
      TimeCase(dfs, v3, *v3_splits, rows, q11_pushed, q11_bound);
  const CaseResult enc_pref_v3 =
      TimeCase(dfs, v3, *v3_splits, rows, q11_prefetch, q11_bound);
  const CaseResult enc_key_v2 =
      TimeCase(dfs, v2, *v2_splits, rows, keyfilter_pushed, no_preds);
  const CaseResult enc_key_v3 =
      TimeCase(dfs, v3, *v3_splits, rows, keyfilter_pushed, no_preds);

  // The pushed-down scans must surface exactly the rows the engine-side
  // filter keeps — across versions AND across the prefetch knob; anything
  // else is a correctness bug, not a speedup.
  CLY_CHECK(pred_v1.rows_out == pred_v2.rows_out);
  CLY_CHECK(pred_v1.rows_out == cutoff + 1);
  CLY_CHECK(full_v1.rows_out == rows && full_v2.rows_out == rows);
  CLY_CHECK(enc_full_v3.rows_out == rows);
  CLY_CHECK(enc_pred_v2.rows_out == enc_pred_v3.rows_out);
  CLY_CHECK(enc_pref_v3.rows_out == enc_pred_v3.rows_out);
  CLY_CHECK(enc_pred_v3.rows_out > 0);
  CLY_CHECK(enc_key_v2.rows_out == enc_key_v3.rows_out);
  CLY_CHECK(enc_key_v3.rows_out > 0 && enc_key_v3.rows_out < rows);

  // Observed compression of the full v3 scan (every block loaded).
  const storage::ScanStats& enc = enc_full_v3.stats;
  CLY_CHECK(enc.bytes_encoded > 0);
  const double ratio = static_cast<double>(enc.bytes_raw) /
                       static_cast<double>(enc.bytes_encoded);

  PrintCase("full scan", "v1", full_v1, "v2", full_v2);
  PrintCase("projected", "v1", proj_v1, "v2", proj_v2);
  PrintCase("predicate 5%", "v1", pred_v1, "v2", pred_v2);
  PrintCase("encoded full", "v2", enc_full_v2, "v3", enc_full_v3);
  PrintCase("encoded Q1.1", "v2", enc_pred_v2, "v3", enc_pred_v3);
  PrintCase("encoded keyfilter", "v2", enc_key_v2, "v3", enc_key_v3);
  PrintCase("Q1.1 prefetch", "v3", enc_pred_v3, "v3+pf", enc_pref_v3);
  std::printf("\nid-predicate pruning: %llu blocks skipped, %llu rows "
              "pruned before decode\n",
              static_cast<unsigned long long>(pred_v2.stats.blocks_skipped),
              static_cast<unsigned long long>(pred_v2.stats.rows_pruned));
  std::printf("v3 compression: %.2fx (%llu encoded / %llu raw bytes); "
              "blocks:",
              ratio, static_cast<unsigned long long>(enc.bytes_encoded),
              static_cast<unsigned long long>(enc.bytes_raw));
  for (int e = 0; e < storage::kEncCount; ++e) {
    std::printf(" %s=%llu", storage::EncodingName(static_cast<uint8_t>(e)),
                static_cast<unsigned long long>(enc.blocks_by_encoding[e]));
  }
  std::printf("\n");

  const char* json_path = std::getenv("CLY_SCAN_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    std::FILE* out = std::fopen(json_path, "w");
    CLY_CHECK(out != nullptr);
    std::fprintf(out,
                 "{\n  \"rows\": %lld,\n  \"splits\": %zu,\n"
                 "  \"predicate_selectivity\": %.4f,\n",
                 static_cast<long long>(rows), v2_splits->size(),
                 static_cast<double>(cutoff + 1) / static_cast<double>(rows));
    EmitCase(out, "scan_full", "v1", full_v1, "v2", full_v2, "v2_speedup");
    EmitCase(out, "scan_projected", "v1", proj_v1, "v2", proj_v2,
             "v2_speedup");
    EmitCase(out, "scan_predicate", "v1", pred_v1, "v2", pred_v2,
             "v2_speedup");
    EmitCase(out, "scan_encoded_full", "v2", enc_full_v2, "v3", enc_full_v3,
             "v3_speedup");
    EmitCase(out, "scan_encoded_predicate", "v2", enc_pred_v2, "v3",
             enc_pred_v3, "v3_speedup");
    EmitCase(out, "scan_encoded_keyfilter", "v2", enc_key_v2, "v3",
             enc_key_v3, "v3_speedup");
    std::fprintf(out,
                 "  \"prefetch\": {\"off_rows_per_sec\": %.1f, "
                 "\"on_rows_per_sec\": %.1f, \"speedup\": %.3f, "
                 "\"rows_out_identical\": true},\n",
                 enc_pred_v3.rows_per_sec, enc_pref_v3.rows_per_sec,
                 enc_pref_v3.rows_per_sec / enc_pred_v3.rows_per_sec);
    std::fprintf(out, "  \"compression_ratio\": %.3f,\n  \"encodings\": {",
                 ratio);
    for (int e = 0; e < storage::kEncCount; ++e) {
      std::fprintf(out, "%s\"%s\": %llu", e == 0 ? "" : ", ",
                   storage::EncodingName(static_cast<uint8_t>(e)),
                   static_cast<unsigned long long>(enc.blocks_by_encoding[e]));
    }
    std::fprintf(out,
                 "},\n  \"bytes_encoded\": %llu,\n  \"bytes_raw\": %llu\n}\n",
                 static_cast<unsigned long long>(enc.bytes_encoded),
                 static_cast<unsigned long long>(enc.bytes_raw));
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
