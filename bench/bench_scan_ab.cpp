// A/B benchmark for the late-materialization CIF scan: the same rows are
// written twice, once as CIF v1 (plain blocks, eager decode) and once as
// CIF v2 (zone maps + late materialization), then scanned three ways —
// full (every column), projected (a narrow column subset), and predicate
// (a ~5%-selectivity clustered range). The v1 predicate case filters
// engine-side with the bound predicate after a full decode, exactly what
// the engine does against a v1 table; the v2 case pushes the predicate
// into the scan *and* re-evaluates engine-side, matching the engine's
// belt-and-braces re-check. With CLY_SCAN_JSON set, writes the results
// (rows/s, per-pass wall seconds, v2-over-v1 speedups, pruning stats) as
// JSON; run_benches.sh publishes it as BENCH_scan.json.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "hdfs/dfs.h"
#include "schema/expr.h"
#include "schema/row_batch.h"
#include "storage/scan_spec.h"
#include "storage/table_format.h"

using namespace clydesdale;  // NOLINT(build/namespaces)

namespace {

SchemaPtr FactSchema() {
  return Schema::Make({{"id", TypeKind::kInt32, 4},
                       {"revenue", TypeKind::kInt64, 8},
                       {"discount", TypeKind::kDouble, 8},
                       {"mode", TypeKind::kString, 10}});
}

Row MakeRow(int64_t i) {
  static const char* kModes[] = {"AIR",     "RAIL",    "SHIP",   "TRUCK",
                                 "PIPELINE", "BARGE",  "COURIER", "DRONE"};
  return Row({Value(static_cast<int32_t>(i)),
              Value((i * INT64_C(2654435761)) % 1000000),
              Value(static_cast<double>(i % 100) / 100.0),
              Value(kModes[i % 8])});
}

storage::TableDesc WriteTable(hdfs::MiniDfs* dfs, const std::string& path,
                              int64_t rows, int64_t rows_per_split,
                              int cif_version) {
  storage::TableDesc desc;
  desc.path = path;
  desc.format = storage::kFormatCif;
  desc.schema = FactSchema();
  desc.rows_per_split = static_cast<uint64_t>(rows_per_split);
  desc.cif_version = cif_version;
  auto writer = storage::OpenTableWriter(dfs, desc);
  CLY_CHECK(writer.ok());
  for (int64_t i = 0; i < rows; ++i) {
    CLY_CHECK_OK((*writer)->Append(MakeRow(i)));
  }
  CLY_CHECK_OK((*writer)->Close());
  auto loaded = storage::LoadTableDesc(*dfs, path);
  CLY_CHECK(loaded.ok());
  return *loaded;
}

/// One full pass over the table; returns the number of surviving rows.
/// `engine_pred`, when set, is applied batch-wise after the scan — the
/// engine-side re-check both versions pay.
int64_t ScanPass(const hdfs::MiniDfs& dfs, const storage::TableDesc& desc,
                 const std::vector<storage::StorageSplit>& splits,
                 const storage::ScanOptions& base,
                 const BoundPredicate* engine_pred,
                 storage::ScanStats* stats) {
  int64_t rows_out = 0;
  std::vector<uint8_t> sel;
  for (const storage::StorageSplit& split : splits) {
    storage::ScanOptions options = base;
    options.scan_stats = stats;
    auto reader = storage::OpenSplitBatchReader(dfs, desc, split, options);
    CLY_CHECK(reader.ok());
    RowBatch batch((*reader)->output_schema());
    while (true) {
      auto more = (*reader)->NextBatch(&batch, 4096);
      CLY_CHECK(more.ok());
      if (!*more) break;
      const int64_t n = batch.num_rows();
      if (engine_pred == nullptr) {
        rows_out += n;
        continue;
      }
      sel.assign(static_cast<size_t>(n), 1);
      engine_pred->EvalBatch(batch, &sel);
      for (int64_t i = 0; i < n; ++i) rows_out += sel[static_cast<size_t>(i)];
    }
  }
  return rows_out;
}

struct CaseResult {
  double wall_seconds = 0;   // per pass
  double rows_per_sec = 0;   // table rows scanned per second
  int64_t rows_out = 0;
  storage::ScanStats stats;  // last pass (late path only)
};

CaseResult TimeCase(const hdfs::MiniDfs& dfs, const storage::TableDesc& desc,
                    const std::vector<storage::StorageSplit>& splits,
                    int64_t table_rows, const storage::ScanOptions& base,
                    const BoundPredicate* engine_pred) {
  CaseResult result;
  // Warmup: page in the column files and settle allocators.
  ScanPass(dfs, desc, splits, base, engine_pred, nullptr);
  Stopwatch sw;
  int passes = 0;
  do {
    result.stats = storage::ScanStats();
    result.rows_out =
        ScanPass(dfs, desc, splits, base, engine_pred, &result.stats);
    ++passes;
  } while (sw.ElapsedSeconds() < 0.3);
  const double elapsed = sw.ElapsedSeconds();
  result.wall_seconds = elapsed / passes;
  result.rows_per_sec = static_cast<double>(table_rows) * passes / elapsed;
  return result;
}

void PrintCase(const char* name, const CaseResult& v1, const CaseResult& v2) {
  std::printf("%-16s v1 %10.2f Mrows/s   v2 %10.2f Mrows/s   v2/v1 %5.2fx\n",
              name, v1.rows_per_sec / 1e6, v2.rows_per_sec / 1e6,
              v2.rows_per_sec / v1.rows_per_sec);
}

void EmitCase(std::FILE* out, const char* name, const CaseResult& v1,
              const CaseResult& v2, bool last) {
  std::fprintf(out,
               "  \"%s\": {\n"
               "    \"v1\": {\"rows_per_sec\": %.1f, \"wall_seconds\": %.6f, "
               "\"rows_out\": %lld},\n"
               "    \"v2\": {\"rows_per_sec\": %.1f, \"wall_seconds\": %.6f, "
               "\"rows_out\": %lld, \"blocks_skipped\": %llu, "
               "\"rows_pruned\": %llu},\n"
               "    \"v2_speedup\": %.3f\n"
               "  }%s\n",
               name, v1.rows_per_sec, v1.wall_seconds,
               static_cast<long long>(v1.rows_out), v2.rows_per_sec,
               v2.wall_seconds, static_cast<long long>(v2.rows_out),
               static_cast<unsigned long long>(v2.stats.blocks_skipped),
               static_cast<unsigned long long>(v2.stats.rows_pruned),
               v2.rows_per_sec / v1.rows_per_sec, last ? "" : ",");
}

}  // namespace

int main() {
  SetLogThreshold(LogLevel::kWarning);
  const char* sf_env = std::getenv("CLY_BENCH_SF");
  const double sf = sf_env != nullptr ? std::atof(sf_env) : 0.02;
  const int64_t rows =
      std::max<int64_t>(20000, static_cast<int64_t>(sf * 2e6));
  // At least ~20 splits so zone-map skipping has blocks to refute even at
  // smoke scale; capped so the widest column (8 B/row plus the v2 footer)
  // stays within one 256 KiB DFS block per split.
  const int64_t rows_per_split =
      std::min<int64_t>(16384, std::max<int64_t>(1024, rows / 32));

  hdfs::DfsOptions dfs_options;
  dfs_options.num_nodes = 2;
  dfs_options.block_size = 256 * 1024;
  dfs_options.replication = 1;
  hdfs::MiniDfs dfs(dfs_options);

  const storage::TableDesc v1 =
      WriteTable(&dfs, "/scan_ab_v1", rows, rows_per_split, /*cif_version=*/1);
  const storage::TableDesc v2 =
      WriteTable(&dfs, "/scan_ab_v2", rows, rows_per_split, /*cif_version=*/2);
  auto v1_splits = storage::ListTableSplits(dfs, v1);
  auto v2_splits = storage::ListTableSplits(dfs, v2);
  CLY_CHECK(v1_splits.ok());
  CLY_CHECK(v2_splits.ok());

  // ~5% selectivity, clustered on the sequential id column — the shape a
  // date-range predicate over a chronologically rolled-in fact table has.
  const int64_t cutoff = rows / 20 - 1;
  Predicate::Ptr leaf =
      Predicate::Le("id", Value(static_cast<int32_t>(cutoff)));
  auto scan_spec = std::make_shared<storage::ScanSpec>();
  scan_spec->conjuncts.push_back(leaf);

  storage::ScanOptions full;
  storage::ScanOptions projected;
  projected.projection = {"revenue", "mode"};
  storage::ScanOptions predicate;
  predicate.projection = {"id", "revenue"};
  storage::ScanOptions predicate_pushed = predicate;
  predicate_pushed.scan_spec = scan_spec;

  auto pred_schema = Schema::Make(
      {{"id", TypeKind::kInt32, 4}, {"revenue", TypeKind::kInt64, 8}});
  auto bound = leaf->Bind(*pred_schema);
  CLY_CHECK(bound.ok());

  std::printf("late-materialization scan A/B: %lld rows, %zu splits, "
              "predicate selectivity %.1f%%\n\n",
              static_cast<long long>(rows), v2_splits->size(),
              100.0 * static_cast<double>(cutoff + 1) /
                  static_cast<double>(rows));

  const CaseResult full_v1 =
      TimeCase(dfs, v1, *v1_splits, rows, full, nullptr);
  const CaseResult full_v2 =
      TimeCase(dfs, v2, *v2_splits, rows, full, nullptr);
  const CaseResult proj_v1 =
      TimeCase(dfs, v1, *v1_splits, rows, projected, nullptr);
  const CaseResult proj_v2 =
      TimeCase(dfs, v2, *v2_splits, rows, projected, nullptr);
  const CaseResult pred_v1 =
      TimeCase(dfs, v1, *v1_splits, rows, predicate, bound->get());
  const CaseResult pred_v2 =
      TimeCase(dfs, v2, *v2_splits, rows, predicate_pushed, bound->get());

  // The pushed-down scan must surface exactly the rows the engine-side
  // filter keeps; anything else is a correctness bug, not a speedup.
  CLY_CHECK(pred_v1.rows_out == pred_v2.rows_out);
  CLY_CHECK(pred_v1.rows_out == cutoff + 1);
  CLY_CHECK(full_v1.rows_out == rows && full_v2.rows_out == rows);

  PrintCase("full scan", full_v1, full_v2);
  PrintCase("projected", proj_v1, proj_v2);
  PrintCase("predicate 5%", pred_v1, pred_v2);
  std::printf("\npredicate pass pruning: %llu blocks skipped, %llu rows "
              "pruned before decode\n",
              static_cast<unsigned long long>(pred_v2.stats.blocks_skipped),
              static_cast<unsigned long long>(pred_v2.stats.rows_pruned));

  const char* json_path = std::getenv("CLY_SCAN_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    std::FILE* out = std::fopen(json_path, "w");
    CLY_CHECK(out != nullptr);
    std::fprintf(out,
                 "{\n  \"rows\": %lld,\n  \"splits\": %zu,\n"
                 "  \"predicate_selectivity\": %.4f,\n",
                 static_cast<long long>(rows), v2_splits->size(),
                 static_cast<double>(cutoff + 1) / static_cast<double>(rows));
    EmitCase(out, "scan_full", full_v1, full_v2, false);
    EmitCase(out, "scan_projected", proj_v1, proj_v2, false);
    EmitCase(out, "scan_predicate", pred_v1, pred_v2, true);
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
