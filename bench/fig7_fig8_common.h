#ifndef CLYDESDALE_BENCH_FIG7_FIG8_COMMON_H_
#define CLYDESDALE_BENCH_FIG7_FIG8_COMMON_H_

#include <cstdio>

#include "bench_common.h"

namespace clydesdale {
namespace bench {

/// Shared driver for Figures 7 and 8: per-query execution time of
/// Clydesdale vs Hive (repartition and mapjoin plans) at the target scale on
/// one of the paper's clusters.
inline int RunFigure(const sim::ClusterSpec& spec, const char* figure) {
  BenchEnv env = LoadBenchEnv();
  const double target_sf = TargetScaleFactor();

  std::printf(
      "%s: SSB SF%.0f on Cluster %s (%d workers, %d map + %d reduce slots, "
      "%s RAM)\n",
      figure, target_sf, spec.name.c_str(), spec.worker_nodes, spec.map_slots,
      spec.reduce_slots, HumanBytes(spec.mem_bytes).c_str());
  std::printf(
      "functional measurement at SF%.3g; modeled seconds below "
      "(paper reproduces shape, not testbed-exact values)\n\n",
      MeasurementScaleFactor());
  std::printf("%-6s %-10s %-12s %-10s %-12s %-10s\n", "query",
              "clydesdale", "hive-repart", "speedup", "hive-mapjoin",
              "speedup");

  sim::ModelOptions options;
  options.target_sf = target_sf;

  double speedup_sum = 0;
  double speedup_min = 1e30, speedup_max = 0;
  int speedup_n = 0;

  for (const core::StarQuerySpec& query : ssb::AllQueries()) {
    auto m = sim::MeasureQuery(env.cluster.get(), env.dataset, query);
    CLY_CHECK(m.ok());
    auto cly = sim::ModelClydesdale(spec, *m, options);
    auto rp = sim::ModelHive(spec, *m, hive::JoinStrategy::kRepartition,
                             options);
    auto mj = sim::ModelHive(spec, *m, hive::JoinStrategy::kMapJoin, options);
    CLY_CHECK(cly.ok());
    CLY_CHECK(rp.ok());
    CLY_CHECK(mj.ok());

    std::string mj_cell, mj_speedup;
    if (mj->oom) {
      mj_cell = Pad("OOM", -12);
      mj_speedup = Pad("-", -10);
    } else {
      mj_cell = Pad(FormatDouble(mj->seconds, 0), -12);
      mj_speedup = Pad(StrCat(FormatDouble(mj->seconds / cly->seconds, 1), "x"),
                       -10);
    }
    std::printf("%-6s %-10s %-12s %-10s %s %s\n", query.id.c_str(),
                FormatDouble(cly->seconds, 0).c_str(),
                FormatDouble(rp->seconds, 0).c_str(),
                StrCat(FormatDouble(rp->seconds / cly->seconds, 1), "x").c_str(),
                mj_cell.c_str(), mj_speedup.c_str());

    // Track the best-Hive-plan speedup, the quantity the paper summarizes.
    const double best_hive =
        mj->oom ? rp->seconds : std::min(rp->seconds, mj->seconds);
    const double speedup = best_hive / cly->seconds;
    speedup_sum += speedup;
    speedup_min = std::min(speedup_min, speedup);
    speedup_max = std::max(speedup_max, speedup);
    ++speedup_n;
    if (mj->oom) {
      std::printf("       (mapjoin OOM: %s)\n", mj->oom_detail.c_str());
    }
  }
  std::printf(
      "\nClydesdale vs best Hive plan: %.1fx - %.1fx, average %.1fx "
      "(paper cluster %s: %s)\n",
      speedup_min, speedup_max, speedup_sum / speedup_n, spec.name.c_str(),
      spec.name == "A" ? "17.4x-82.7x, avg 38x" : "5.2x-21.4x, avg 11.1x");
  return 0;
}

}  // namespace bench
}  // namespace clydesdale

#endif  // CLYDESDALE_BENCH_FIG7_FIG8_COMMON_H_
