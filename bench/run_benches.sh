#!/usr/bin/env bash
# Runs every google-benchmark micro suite and merges the JSON outputs into
# one BENCH_micro.json: benchmark name -> { rows_per_sec, wall_seconds }.
#
# Usage: run_benches.sh [--no-q21-json] [bench_dir] [output_json]
#   --no-q21-json  skip the Q2.1 barrier-vs-pipelined shuffle A/B
#                  (BENCH_q21.json is published by default)
#   bench_dir      directory holding the bench_micro_* binaries
#                  (default: build/bench relative to the repo root)
#   output_json    merged output path (default: BENCH_micro.json in $PWD)
#
# CLY_BENCH_SF scales the measurement dataset for the engine suite; the
# bench_smoke CMake target pins it to 0.01 for a fast smoke pass.

set -euo pipefail

EMIT_Q21_JSON=1
POSITIONAL=()
for arg in "$@"; do
  case "${arg}" in
    --no-q21-json) EMIT_Q21_JSON=0 ;;
    --q21-json) EMIT_Q21_JSON=1 ;;  # legacy flag: now the default
    *) POSITIONAL+=("${arg}") ;;
  esac
done
set -- "${POSITIONAL[@]:-}"

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
BENCH_DIR="${1:-${SCRIPT_DIR}/../build/bench}"
OUT_JSON="${2:-${PWD}/BENCH_micro.json}"
export CLY_BENCH_SF="${CLY_BENCH_SF:-0.01}"

if [ ! -d "${BENCH_DIR}" ]; then
  echo "error: bench dir ${BENCH_DIR} not found (build the project first)" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

for bin in "${BENCH_DIR}"/bench_micro_*; do
  [ -x "${bin}" ] || continue
  name="$(basename "${bin}")"
  echo "== ${name} (CLY_BENCH_SF=${CLY_BENCH_SF})"
  "${bin}" --benchmark_format=json \
           --benchmark_out="${TMP_DIR}/${name}.json" \
           --benchmark_out_format=json >/dev/null
done

python3 - "${TMP_DIR}" "${OUT_JSON}" <<'EOF'
import json
import pathlib
import sys

tmp_dir, out_path = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
merged = {}
for path in sorted(tmp_dir.glob("*.json")):
    suite = path.stem
    data = json.loads(path.read_text())
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        entry = {"suite": suite}
        if "items_per_second" in bench:
            entry["rows_per_sec"] = round(bench["items_per_second"], 1)
        # real_time is per-iteration; convert to seconds via the unit.
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[unit]
        entry["wall_seconds"] = round(bench["real_time"] * scale, 6)
        merged[name] = entry

out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
print(f"wrote {out_path} ({len(merged)} benchmarks)")
EOF

# CIF scan A/B: v1 vs v2 (late materialization, DESIGN.md §11) and v2 vs v3
# (compressed execution, DESIGN.md §12) across full / projected / predicate
# scans. Publishes rows/s, per-pass wall seconds, speedups, zone-map pruning
# stats, the observed compression ratio, and per-encoding block counts.
SCAN_BIN="${BENCH_DIR}/bench_scan_ab"
if [ -x "${SCAN_BIN}" ]; then
  echo "== bench_scan_ab (CLY_BENCH_SF=${CLY_BENCH_SF})"
  SCAN_JSON="$(dirname "${OUT_JSON}")/BENCH_scan.json"
  CLY_SCAN_JSON="${SCAN_JSON}" "${SCAN_BIN}" >/dev/null
  if [ ! -e "${SCAN_JSON}" ]; then
    echo "error: bench_scan_ab did not write ${SCAN_JSON}" >&2
    exit 1
  fi
  # The encoded-scan fields are part of the published contract: fail loudly
  # if the A/B regressed to the v1/v2-only shape.
  python3 - "${SCAN_JSON}" <<'EOF'
import json
import sys

path = sys.argv[1]
data = json.loads(open(path).read())
required = [
    "scan_encoded_full", "scan_encoded_predicate", "scan_encoded_keyfilter",
    "prefetch", "compression_ratio", "encodings", "bytes_encoded",
    "bytes_raw",
]
missing = [k for k in required if k not in data]
for case in ("scan_encoded_full", "scan_encoded_predicate",
             "scan_encoded_keyfilter"):
    for sub in ("v2", "v3", "v3_speedup"):
        if case in data and sub not in data[case]:
            missing.append(f"{case}.{sub}")
if missing:
    sys.exit(f"error: {path} lacks encoded-scan fields: {', '.join(missing)}")
print(f"{path}: compression {data['compression_ratio']:.2f}x, "
      f"encoded-predicate speedup "
      f"{data['scan_encoded_predicate']['v3_speedup']:.2f}x")
EOF
  echo "wrote ${SCAN_JSON} (late-materialization + compressed scan A/B)"
fi

# Resident serving mode (DESIGN.md §15): N zipfian clients replay the 13 SSB
# shapes closed-loop against one QueryServer. Publishes cold vs warm
# p50/p95/p99 latency, the cross-query dim-cache hit rate, the result-cache
# replay rate, and the cold-pass byte-identity verdict.
SERVING_BIN="${BENCH_DIR}/bench_serving"
if [ -x "${SERVING_BIN}" ]; then
  echo "== bench_serving (CLY_BENCH_SF=${CLY_BENCH_SF})"
  SERVING_JSON="$(dirname "${OUT_JSON}")/BENCH_serving.json"
  CLY_SERVING_JSON="${SERVING_JSON}" "${SERVING_BIN}" >/dev/null
  if [ ! -e "${SERVING_JSON}" ]; then
    echo "error: bench_serving did not write ${SERVING_JSON}" >&2
    exit 1
  fi
  python3 - "${SERVING_JSON}" <<'EOF'
import json
import sys

path = sys.argv[1]
data = json.loads(open(path).read())
required = ["scale_factor", "clients", "queries_per_client", "zipf_s",
            "byte_identical", "cold", "warm", "warm_result_cache",
            "warm_speedup_p50", "dim_cache", "result_cache"]
missing = [k for k in required if k not in data]
for pass_name in ("cold", "warm", "warm_result_cache"):
    for sub in ("queries", "p50_ms", "p95_ms", "p99_ms", "mean_ms"):
        if pass_name in data and sub not in data[pass_name]:
            missing.append(f"{pass_name}.{sub}")
for sub in ("hits", "misses", "hit_rate", "evictions", "resident_bytes"):
    if "dim_cache" in data and sub not in data["dim_cache"]:
        missing.append(f"dim_cache.{sub}")
if missing:
    sys.exit(f"error: {path} lacks serving fields: {', '.join(missing)}")
if data["byte_identical"] is not True:
    sys.exit(f"error: {path}: cold serving pass diverged from the "
             "per-query engine")
if data["dim_cache"]["hit_rate"] <= 0:
    sys.exit(f"error: {path}: warm loop never hit the dim cache")
print(f"{path}: warm p50 {data['warm']['p50_ms']:.2f} ms vs cold "
      f"{data['cold']['p50_ms']:.2f} ms "
      f"({data['warm_speedup_p50']:.2f}x), dim-cache hit rate "
      f"{100 * data['dim_cache']['hit_rate']:.1f}%")
EOF
  echo "wrote ${SERVING_JSON} (cold vs warm serving closed loop)"
fi

# Traced Q2.1 breakdown: publish the artifacts the observability layer
# emits — Chrome trace + timeline (load the .trace.json in chrome://tracing
# or https://ui.perfetto.dev for the per-stage drill-down), the Prometheus
# metrics snapshot, the sampled metrics time series, the text cluster
# dashboard, and the JSONL job history.
Q21_BIN="${BENCH_DIR}/bench_q21_breakdown"
if [ -x "${Q21_BIN}" ]; then
  TRACE_DIR="${TMP_DIR}/q21_trace"
  mkdir -p "${TRACE_DIR}"
  echo "== bench_q21_breakdown (traced, CLY_BENCH_SF=${CLY_BENCH_SF})"
  OUT_DIR="$(dirname "${OUT_JSON}")"
  Q21_JSON=""
  if [ "${EMIT_Q21_JSON}" = "1" ]; then
    Q21_JSON="${OUT_DIR}/BENCH_q21.json"
  fi
  MEMORY_JSON="${OUT_DIR}/BENCH_memory.json"
  CLY_TRACE_DIR="${TRACE_DIR}" CLY_Q21_JSON="${Q21_JSON}" \
    CLY_MEMORY_JSON="${MEMORY_JSON}" "${Q21_BIN}" >/dev/null
  if [ -n "${Q21_JSON}" ] && [ -e "${Q21_JSON}" ]; then
    echo "wrote ${Q21_JSON} (barrier vs pipelined shuffle A/B)"
  fi
  # Hierarchical memory accounting: per-operator peaks + the tracker-on vs
  # tracker-off overhead A/B. The bench itself CLY_CHECKs the <=2% overhead
  # bound; here we fail loudly if the published shape loses fields.
  if [ ! -e "${MEMORY_JSON}" ]; then
    echo "error: bench_q21_breakdown did not write ${MEMORY_JSON}" >&2
    exit 1
  fi
  python3 - "${MEMORY_JSON}" <<'EOF'
import json
import sys

path = sys.argv[1]
data = json.loads(open(path).read())
missing = [k for k in ("operator_peak_bytes", "job_peak_bytes",
                       "wall_seconds_tracking_off",
                       "wall_seconds_tracking_on", "overhead_pct")
           if k not in data]
ops = data.get("operator_peak_bytes", {})
for op in ("scan", "probe", "aggregate", "shuffle"):
    if op not in ops:
        missing.append(f"operator_peak_bytes.{op}")
    elif ops[op] <= 0:
        sys.exit(f"error: {path}: {op} peak is {ops[op]}, expected > 0")
if missing:
    sys.exit(f"error: {path} lacks memory fields: {', '.join(missing)}")
if data["job_peak_bytes"] <= 0:
    sys.exit(f"error: {path}: job_peak_bytes must be positive")
print(f"{path}: job peak {data['job_peak_bytes'] / 1024:.1f} KiB, "
      f"tracking overhead {data['overhead_pct']:+.2f}%")
EOF
  echo "wrote ${MEMORY_JSON} (per-operator peaks + tracking overhead A/B)"
  for f in "${TRACE_DIR}"/*.trace.json; do
    [ -e "${f}" ] || continue
    cp "${f}" "${OUT_DIR}/BENCH_q21.trace.json"
    echo "wrote ${OUT_DIR}/BENCH_q21.trace.json"
  done
  for f in "${TRACE_DIR}"/*.timeline.txt; do
    [ -e "${f}" ] || continue
    cp "${f}" "${OUT_DIR}/BENCH_q21.timeline.txt"
    echo "wrote ${OUT_DIR}/BENCH_q21.timeline.txt"
  done
  # Live-metrics + history artifacts (the traced run enables obs.metrics /
  # obs.history, so one of each lands per stage job; the star-join job is
  # the first and only stage for Q2.1).
  for ext in prom metrics.json dashboard.txt history.jsonl; do
    for f in "${TRACE_DIR}"/*."${ext}"; do
      [ -e "${f}" ] || continue
      cp "${f}" "${OUT_DIR}/BENCH_q21.${ext}"
      echo "wrote ${OUT_DIR}/BENCH_q21.${ext}"
    done
  done
  # EXPLAIN ANALYZE: the traced run profiles every operator, so the engine
  # drops <job>-<n>.profile.{json,txt} next to the trace. Publish them and
  # fail loudly if the per-operator contract (DESIGN.md §13) loses fields.
  PROFILE_JSON=""
  for f in "${TRACE_DIR}"/*.profile.json; do
    [ -e "${f}" ] || continue
    PROFILE_JSON="${OUT_DIR}/BENCH_profile.json"
    cp "${f}" "${PROFILE_JSON}"
    echo "wrote ${PROFILE_JSON}"
  done
  for f in "${TRACE_DIR}"/*.profile.txt; do
    [ -e "${f}" ] || continue
    cp "${f}" "${OUT_DIR}/BENCH_profile.txt"
    echo "wrote ${OUT_DIR}/BENCH_profile.txt"
  done
  if [ -z "${PROFILE_JSON}" ]; then
    echo "error: traced bench_q21_breakdown wrote no .profile.json" >&2
    exit 1
  fi
  python3 - "${PROFILE_JSON}" <<'EOF'
import json
import sys

path = sys.argv[1]
data = json.loads(open(path).read())
missing = [k for k in ("wall_seconds", "profiled_span_seconds",
                       "first_start_us", "last_end_us", "operators", "roots")
           if k not in data]
node_fields = ("name", "kind", "rows_in", "rows_out", "selectivity",
               "batches", "wall_ns", "wall_max_ns", "cpu_ns", "bytes_decoded",
               "bytes_raw", "blocks_skipped", "rows_pruned",
               "blocks_by_encoding", "prefetch_hits", "prefetch_misses",
               "prefetch_wait_ns", "mem_current_bytes", "mem_peak_bytes",
               "tasks", "children")
kinds = set()

def walk(node, trail):
    kinds.add(node.get("kind", ""))
    for field in node_fields:
        if field not in node:
            missing.append(f"{trail}.{field}")
    sel = node.get("selectivity")
    if sel is not None and not 0.0 <= sel <= 1.0:
        sys.exit(f"error: {path}: {trail} selectivity {sel} outside [0,1]")
    for child in node.get("children", []):
        walk(child, f"{trail}>{child.get('name', '?')}")

for root in data.get("roots", []):
    walk(root, root.get("name", "?"))
if missing:
    sys.exit(f"error: {path} lacks profile fields: {', '.join(missing)}")
for kind in ("scan", "probe", "aggregate"):
    if kind not in kinds:
        sys.exit(f"error: {path} has no '{kind}' operator in the plan tree")
print(f"{path}: {data['operators']} operators, "
      f"profiled span {data['profiled_span_seconds']:.3f}s "
      f"of {data['wall_seconds']:.3f}s wall")
EOF
fi
