// Reproduces paper Figure 8: Clydesdale vs Hive on the Star Schema Benchmark
// at SF1000, Cluster B (40 workers, 32 GB, 5 disks, 1 GbE).

#include "fig7_fig8_common.h"

int main() {
  return clydesdale::bench::RunFigure(
      clydesdale::sim::ClusterSpec::ClusterB(), "Figure 8");
}
