// Micro-benchmarks for the join primitives: dimension hash-table build and
// probe (vs std::unordered_map as a baseline), and the block-iteration
// probe loop vs row-at-a-time (§5.3's ablation at the functional level).

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/logging.h"
#include "common/random.h"
#include "core/dim_hash_table.h"
#include "storage/binary_row_format.h"

namespace clydesdale {
namespace {

SchemaPtr DimSchema() {
  return Schema::Make({{"pk", TypeKind::kInt32, 4},
                       {"nation", TypeKind::kString, 12},
                       {"region", TypeKind::kString, 9}});
}

std::vector<uint8_t> DimStream(int entries) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(entries));
  for (int i = 1; i <= entries; ++i) {
    rows.push_back(Row({Value(int32_t{i}),
                        Value(std::string("nation") + std::to_string(i % 25)),
                        Value(i % 2 == 0 ? "ASIA" : "EUROPE")}));
  }
  return storage::EncodeRowStream(rows);
}

void BM_DimHashBuild(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  const auto stream = DimStream(entries);
  const auto schema = DimSchema();
  for (auto _ : state) {
    auto table = core::DimHashTable::Build(*schema, stream.data(),
                                           stream.size(), *Predicate::True(),
                                           "pk", {"nation"});
    CLY_CHECK(table.ok());
    benchmark::DoNotOptimize((*table)->entries());
  }
  state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_DimHashBuild)->Arg(2000)->Arg(30000)->Arg(200000);

void BM_DimHashProbe(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  const auto stream = DimStream(entries);
  const auto schema = DimSchema();
  auto table = core::DimHashTable::Build(*schema, stream.data(), stream.size(),
                                         *Predicate::True(), "pk", {"nation"});
  CLY_CHECK(table.ok());
  Random rng(7);
  uint64_t hits = 0;
  for (auto _ : state) {
    // Half the probes miss, as in a selective star join.
    const int64_t key = rng.Uniform(1, entries * 2);
    hits += (*table)->Probe(key) != nullptr ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DimHashProbe)->Arg(2000)->Arg(30000)->Arg(200000);

void BM_StdUnorderedMapProbe(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  std::unordered_map<int64_t, Row> map;
  for (int i = 1; i <= entries; ++i) {
    map.emplace(i, Row({Value("payload")}));
  }
  Random rng(7);
  uint64_t hits = 0;
  for (auto _ : state) {
    const int64_t key = rng.Uniform(1, entries * 2);
    hits += map.find(key) != map.end() ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdUnorderedMapProbe)->Arg(2000)->Arg(30000)->Arg(200000);

// --- block iteration vs row-at-a-time over an in-memory batch ----------------

RowBatch FactBatch(int64_t rows) {
  auto schema = Schema::Make({{"fk", TypeKind::kInt32, 4},
                              {"measure", TypeKind::kInt32, 4}});
  RowBatch batch(schema);
  Random rng(3);
  for (int64_t i = 0; i < rows; ++i) {
    batch.mutable_column(0)->AppendInt32(
        static_cast<int32_t>(rng.Uniform(1, 30000)));
    batch.mutable_column(1)->AppendInt32(
        static_cast<int32_t>(rng.Uniform(1, 1000)));
  }
  CLY_CHECK_OK(batch.SealRowCount());
  return batch;
}

void BM_ProbeRowAtATime(benchmark::State& state) {
  const auto stream = DimStream(30000);
  const auto schema = DimSchema();
  auto table = core::DimHashTable::Build(*schema, stream.data(), stream.size(),
                                         *Predicate::Eq("region", Value("ASIA")),
                                         "pk", {"nation"});
  CLY_CHECK(table.ok());
  const RowBatch batch = FactBatch(100000);
  for (auto _ : state) {
    int64_t sum = 0;
    // Materialize each row (the per-record hand-off of a Volcano-style loop).
    for (int64_t i = 0; i < batch.num_rows(); ++i) {
      const Row row = batch.GetRow(i);
      const Row* aux = (*table)->Probe(row.Get(0).AsInt64());
      if (aux != nullptr) sum += row.Get(1).i32();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * batch.num_rows());
}
BENCHMARK(BM_ProbeRowAtATime)->Unit(benchmark::kMillisecond);

void BM_ProbeBlockIteration(benchmark::State& state) {
  const auto stream = DimStream(30000);
  const auto schema = DimSchema();
  auto table = core::DimHashTable::Build(*schema, stream.data(), stream.size(),
                                         *Predicate::Eq("region", Value("ASIA")),
                                         "pk", {"nation"});
  CLY_CHECK(table.ok());
  const RowBatch batch = FactBatch(100000);
  const auto& fks = batch.column(0).i32();
  const auto& measures = batch.column(1).i32();
  for (auto _ : state) {
    int64_t sum = 0;
    // Tight columnar loop: no per-row materialization (B-CIF, §5.3).
    for (size_t i = 0; i < fks.size(); ++i) {
      const Row* aux = (*table)->Probe(fks[i]);
      if (aux != nullptr) sum += measures[i];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * batch.num_rows());
}
BENCHMARK(BM_ProbeBlockIteration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace clydesdale
