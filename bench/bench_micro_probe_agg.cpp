// Isolates the star-join map task's scan→filter→probe→aggregate inner loop
// on three SSB query shapes — Q1.1 (filter-heavy, no group key), Q2.1 (int
// group key), Q4.x (string group key) — comparing the pre-vectorization
// baseline (per-row probe, Row group keys, unordered_map aggregator) against
// the production VectorizedProbe + flat HashAggregator pipeline. The
// reported items/sec is fact rows through the pipeline.

#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "core/aggregation.h"
#include "core/dim_hash_table.h"
#include "core/star_query.h"
#include "core/vector_probe.h"
#include "schema/expr.h"
#include "schema/row_batch.h"
#include "storage/binary_row_format.h"

namespace clydesdale {
namespace {

constexpr int64_t kBatchRows = 4096;   // production ClydesdaleOptions default
constexpr int64_t kFactRows = 64 * kBatchRows;

/// One benchmark scenario: a fact table pre-split into production-sized
/// batches plus everything the probe loop needs (bound predicate, dimension
/// tables, group sources, bound accumulator expressions).
struct Shape {
  SchemaPtr fact_schema;
  std::vector<RowBatch> batches;
  BoundPredicatePtr pred;
  std::vector<std::shared_ptr<const core::DimHashTable>> tables;
  std::vector<int> fk_index;
  std::vector<core::GroupSource> group_sources;
  std::vector<BoundScalarPtr> acc_exprs;  // null entry = COUNT's constant 1
  core::AggLayout layout = core::AggLayout::For({});

  core::VectorizedProbe MakeProbe() const {
    std::vector<const core::DimHashTable*> raw;
    for (const auto& t : tables) raw.push_back(t.get());
    std::vector<const BoundScalar*> accs;
    for (const auto& e : acc_exprs) accs.push_back(e.get());
    return core::VectorizedProbe(pred.get(), fk_index, std::move(raw),
                                 group_sources, std::move(accs));
  }
};

std::shared_ptr<const core::DimHashTable> BuildDim(
    const SchemaPtr& schema, const std::vector<Row>& rows,
    const Predicate& pred, const std::string& pk,
    const std::vector<std::string>& aux) {
  const std::vector<uint8_t> stream = storage::EncodeRowStream(rows);
  auto table = core::DimHashTable::Build(*schema, stream.data(), stream.size(),
                                         pred, pk, aux);
  CLY_CHECK(table.ok());
  return *table;
}

/// Date dimension: 2556 days across 7 years, aux d_year.
std::shared_ptr<const core::DimHashTable> DateDim(const Predicate& pred,
                                                  std::vector<std::string> aux) {
  auto schema = Schema::Make({{"d_datekey", TypeKind::kInt32, 4},
                              {"d_year", TypeKind::kInt32, 4}});
  std::vector<Row> rows;
  for (int i = 0; i < 2556; ++i) {
    rows.push_back(Row({Value(int32_t{19920101 + i}),
                        Value(int32_t{1992 + i / 366})}));
  }
  return BuildDim(schema, rows, pred, "d_datekey", std::move(aux));
}

/// Generic integer-keyed dimension with a string attribute cycling over
/// `cardinality` distinct values ("attr0".."attrN").
std::shared_ptr<const core::DimHashTable> AttrDim(
    int entries, int cardinality, const Predicate& pred,
    std::vector<std::string> aux) {
  auto schema = Schema::Make({{"pk", TypeKind::kInt32, 4},
                              {"attr", TypeKind::kString, 10},
                              {"bucket", TypeKind::kInt32, 4}});
  std::vector<Row> rows;
  for (int i = 1; i <= entries; ++i) {
    rows.push_back(Row({Value(int32_t{i}),
                        Value(std::string("attr") +
                              std::to_string(i % cardinality)),
                        Value(int32_t{i % 5})}));
  }
  return BuildDim(schema, rows, pred, "pk", std::move(aux));
}

std::vector<RowBatch> SplitIntoBatches(const SchemaPtr& schema,
                                       const std::vector<std::vector<int32_t>>& cols) {
  std::vector<RowBatch> batches;
  for (int64_t start = 0; start < kFactRows; start += kBatchRows) {
    RowBatch batch(schema);
    for (size_t c = 0; c < cols.size(); ++c) {
      for (int64_t i = start; i < start + kBatchRows; ++i) {
        batch.mutable_column(static_cast<int>(c))
            ->AppendInt32(cols[c][static_cast<size_t>(i)]);
      }
    }
    CLY_CHECK_OK(batch.SealRowCount());
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// Q1.1 shape: selective fact predicate, one filtered date join (filter-only,
/// no aux), SUM(extendedprice * discount), no group key.
Shape MakeQ11Shape() {
  Shape s;
  s.fact_schema = Schema::Make({{"lo_orderdate", TypeKind::kInt32, 4},
                                {"lo_quantity", TypeKind::kInt32, 4},
                                {"lo_discount", TypeKind::kInt32, 4},
                                {"lo_extendedprice", TypeKind::kInt32, 4}});
  Random rng(11);
  std::vector<std::vector<int32_t>> cols(4);
  for (int64_t i = 0; i < kFactRows; ++i) {
    cols[0].push_back(static_cast<int32_t>(19920101 + rng.Uniform(0, 2555)));
    cols[1].push_back(static_cast<int32_t>(rng.Uniform(1, 50)));
    cols[2].push_back(static_cast<int32_t>(rng.Uniform(0, 10)));
    cols[3].push_back(static_cast<int32_t>(rng.Uniform(100, 100000)));
  }
  s.batches = SplitIntoBatches(s.fact_schema, cols);

  auto pred = Predicate::And({Predicate::Between("lo_discount", Value(int32_t{1}),
                                                 Value(int32_t{3})),
                              Predicate::Lt("lo_quantity", Value(int32_t{25}))});
  auto bound = pred->Bind(*s.fact_schema);
  CLY_CHECK(bound.ok());
  s.pred = std::move(*bound);

  s.tables.push_back(
      DateDim(*Predicate::Eq("d_year", Value(int32_t{1993})), {}));
  s.fk_index = {0};

  auto expr = Expr::Mul(Expr::Col("lo_extendedprice"), Expr::Col("lo_discount"));
  auto acc = expr->Bind(*s.fact_schema);
  CLY_CHECK(acc.ok());
  s.acc_exprs.push_back(std::move(*acc));
  s.layout = core::AggLayout::For(
      {{"revenue", Expr::Col("lo_extendedprice"), core::AggKind::kSum}});
  return s;
}

/// Q2.1 shape: no fact predicate, three joins (two filtered), SUM(revenue)
/// grouped by the int d_year aux column.
Shape MakeQ21Shape() {
  Shape s;
  s.fact_schema = Schema::Make({{"lo_partkey", TypeKind::kInt32, 4},
                                {"lo_suppkey", TypeKind::kInt32, 4},
                                {"lo_orderdate", TypeKind::kInt32, 4},
                                {"lo_revenue", TypeKind::kInt32, 4}});
  Random rng(21);
  std::vector<std::vector<int32_t>> cols(4);
  for (int64_t i = 0; i < kFactRows; ++i) {
    cols[0].push_back(static_cast<int32_t>(rng.Uniform(1, 20000)));
    cols[1].push_back(static_cast<int32_t>(rng.Uniform(1, 2000)));
    cols[2].push_back(static_cast<int32_t>(19920101 + rng.Uniform(0, 2555)));
    cols[3].push_back(static_cast<int32_t>(rng.Uniform(100, 100000)));
  }
  s.batches = SplitIntoBatches(s.fact_schema, cols);

  auto bound = Predicate::True()->Bind(*s.fact_schema);
  CLY_CHECK(bound.ok());
  s.pred = std::move(*bound);

  // part filtered to 1/5 of buckets, supplier to 1/5, date unfiltered.
  s.tables.push_back(
      AttrDim(20000, 25, *Predicate::Eq("bucket", Value(int32_t{2})), {}));
  s.tables.push_back(
      AttrDim(2000, 25, *Predicate::Eq("bucket", Value(int32_t{1})), {}));
  s.tables.push_back(DateDim(*Predicate::True(), {"d_year"}));
  s.fk_index = {0, 1, 2};
  s.group_sources.push_back(core::GroupSource{false, 2, 0, 0});  // d_year

  auto acc = Expr::Col("lo_revenue")->Bind(*s.fact_schema);
  CLY_CHECK(acc.ok());
  s.acc_exprs.push_back(std::move(*acc));
  s.layout = core::AggLayout::For(
      {{"revenue", Expr::Col("lo_revenue"), core::AggKind::kSum}});
  return s;
}

/// Q4.x shape: two filtered joins plus date, SUM(revenue - supplycost)
/// grouped by (d_year, c_nation) — a string in the group key.
Shape MakeQ4Shape() {
  Shape s;
  s.fact_schema = Schema::Make({{"lo_custkey", TypeKind::kInt32, 4},
                                {"lo_suppkey", TypeKind::kInt32, 4},
                                {"lo_orderdate", TypeKind::kInt32, 4},
                                {"lo_revenue", TypeKind::kInt32, 4},
                                {"lo_supplycost", TypeKind::kInt32, 4}});
  Random rng(44);
  std::vector<std::vector<int32_t>> cols(5);
  for (int64_t i = 0; i < kFactRows; ++i) {
    cols[0].push_back(static_cast<int32_t>(rng.Uniform(1, 30000)));
    cols[1].push_back(static_cast<int32_t>(rng.Uniform(1, 2000)));
    cols[2].push_back(static_cast<int32_t>(19920101 + rng.Uniform(0, 2555)));
    cols[3].push_back(static_cast<int32_t>(rng.Uniform(100, 100000)));
    cols[4].push_back(static_cast<int32_t>(rng.Uniform(50, 60000)));
  }
  s.batches = SplitIntoBatches(s.fact_schema, cols);

  auto bound = Predicate::True()->Bind(*s.fact_schema);
  CLY_CHECK(bound.ok());
  s.pred = std::move(*bound);

  // customer filtered to 1/5 with 25 nations, supplier filtered to 1/5.
  s.tables.push_back(
      AttrDim(30000, 25, *Predicate::Eq("bucket", Value(int32_t{3})),
              {"attr"}));
  s.tables.push_back(
      AttrDim(2000, 25, *Predicate::Eq("bucket", Value(int32_t{1})), {}));
  s.tables.push_back(DateDim(*Predicate::True(), {"d_year"}));
  s.fk_index = {0, 1, 2};
  s.group_sources.push_back(core::GroupSource{false, 2, 0, 0});  // d_year
  s.group_sources.push_back(core::GroupSource{false, 0, 0, 0});  // c_nation

  auto expr = Expr::Sub(Expr::Col("lo_revenue"), Expr::Col("lo_supplycost"));
  auto acc = expr->Bind(*s.fact_schema);
  CLY_CHECK(acc.ok());
  s.acc_exprs.push_back(std::move(*acc));
  s.layout = core::AggLayout::For(
      {{"profit", Expr::Col("lo_revenue"), core::AggKind::kSum}});
  return s;
}

/// The pre-vectorization inner loop, reproduced verbatim from the seed:
/// byte-mask predicate, then per-row scalar probes, Row materialization for
/// survivors, Row group keys into an unordered_map aggregator.
uint64_t RunBaseline(const Shape& s) {
  std::unordered_map<Row, std::vector<int64_t>, RowHasher> groups;
  std::vector<uint8_t> sel;
  std::vector<const Row*> matched(s.tables.size());
  uint64_t join_rows = 0;
  for (const RowBatch& batch : s.batches) {
    const int64_t n = batch.num_rows();
    sel.assign(static_cast<size_t>(n), 1);
    s.pred->EvalBatch(batch, &sel);
    for (int64_t i = 0; i < n; ++i) {
      if (sel[static_cast<size_t>(i)] == 0) continue;
      bool ok = true;
      for (size_t d = 0; d < s.tables.size(); ++d) {
        matched[d] =
            s.tables[d]->Probe(batch.column(s.fk_index[d]).KeyAt(i));
        if (matched[d] == nullptr) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      ++join_rows;
      const Row row = batch.GetRow(i);
      Row group_key;
      group_key.Reserve(static_cast<int>(s.group_sources.size()));
      for (const core::GroupSource& src : s.group_sources) {
        group_key.Append(
            src.from_fact
                ? row.Get(src.fact_index)
                : matched[static_cast<size_t>(src.dim_index)]->Get(
                      src.aux_index));
      }
      int64_t values[16];
      for (size_t a = 0; a < s.acc_exprs.size(); ++a) {
        values[a] = s.acc_exprs[a] == nullptr
                        ? 1
                        : s.acc_exprs[a]->Eval(row).AsInt64();
      }
      auto [it, inserted] = groups.try_emplace(
          group_key,
          std::vector<int64_t>(
              static_cast<size_t>(s.layout.num_accumulators()),
              core::AggLayout::InitValue(core::AccKind::kSum)));
      s.layout.Merge(it->second.data(), values);
    }
  }
  benchmark::DoNotOptimize(groups);
  return join_rows;
}

uint64_t RunVectorized(const Shape& s, core::VectorizedProbe* probe) {
  core::HashAggregator agg(s.layout);
  for (const RowBatch& batch : s.batches) {
    CLY_CHECK_OK(probe->ProcessBatchAgg(batch, &agg));
  }
  benchmark::DoNotOptimize(agg.num_groups());
  return agg.num_groups();
}

void RunBaselineBench(benchmark::State& state, const Shape& s) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBaseline(s));
  }
  state.SetItemsProcessed(state.iterations() * kFactRows);
}

void RunVectorizedBench(benchmark::State& state, const Shape& s) {
  core::VectorizedProbe probe = s.MakeProbe();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunVectorized(s, &probe));
  }
  state.SetItemsProcessed(state.iterations() * kFactRows);
}

void BM_ProbeAggBaseline_Q11NoGroup(benchmark::State& state) {
  static const Shape* s = new Shape(MakeQ11Shape());
  RunBaselineBench(state, *s);
}
BENCHMARK(BM_ProbeAggBaseline_Q11NoGroup)->Unit(benchmark::kMillisecond);

void BM_ProbeAggVectorized_Q11NoGroup(benchmark::State& state) {
  static const Shape* s = new Shape(MakeQ11Shape());
  RunVectorizedBench(state, *s);
}
BENCHMARK(BM_ProbeAggVectorized_Q11NoGroup)->Unit(benchmark::kMillisecond);

void BM_ProbeAggBaseline_Q21IntGroup(benchmark::State& state) {
  static const Shape* s = new Shape(MakeQ21Shape());
  RunBaselineBench(state, *s);
}
BENCHMARK(BM_ProbeAggBaseline_Q21IntGroup)->Unit(benchmark::kMillisecond);

void BM_ProbeAggVectorized_Q21IntGroup(benchmark::State& state) {
  static const Shape* s = new Shape(MakeQ21Shape());
  RunVectorizedBench(state, *s);
}
BENCHMARK(BM_ProbeAggVectorized_Q21IntGroup)->Unit(benchmark::kMillisecond);

void BM_ProbeAggBaseline_Q4StringGroup(benchmark::State& state) {
  static const Shape* s = new Shape(MakeQ4Shape());
  RunBaselineBench(state, *s);
}
BENCHMARK(BM_ProbeAggBaseline_Q4StringGroup)->Unit(benchmark::kMillisecond);

void BM_ProbeAggVectorized_Q4StringGroup(benchmark::State& state) {
  static const Shape* s = new Shape(MakeQ4Shape());
  RunVectorizedBench(state, *s);
}
BENCHMARK(BM_ProbeAggVectorized_Q4StringGroup)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace clydesdale
