#ifndef CLYDESDALE_BENCH_BENCH_COMMON_H_
#define CLYDESDALE_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "mapreduce/engine.h"
#include "sim/hadoop_cost_model.h"
#include "sim/workload.h"
#include "ssb/loader.h"
#include "ssb/queries.h"

namespace clydesdale {
namespace bench {

/// Scale factor for the functional measurement layer. The default keeps a
/// full 13-query measurement pass under a minute; raise CLY_BENCH_SF for
/// tighter selectivity estimates.
inline double MeasurementScaleFactor() {
  const char* env = std::getenv("CLY_BENCH_SF");
  return env != nullptr ? std::atof(env) : 0.02;
}

/// The modeled target scale (the paper's SF 1000).
inline double TargetScaleFactor() {
  const char* env = std::getenv("CLY_TARGET_SF");
  return env != nullptr ? std::atof(env) : 1000.0;
}

/// A loaded measurement cluster (functional layer).
struct BenchEnv {
  std::unique_ptr<mr::MrCluster> cluster;
  ssb::SsbDataset dataset;
};

inline BenchEnv LoadBenchEnv() {
  SetLogThreshold(LogLevel::kWarning);
  mr::ClusterOptions copts;
  copts.num_nodes = 4;
  copts.map_slots_per_node = 2;
  copts.dfs_block_size = 256 * 1024;
  auto cluster = std::make_unique<mr::MrCluster>(copts);

  ssb::SsbLoadOptions options;
  options.scale_factor = MeasurementScaleFactor();
  auto dataset = ssb::LoadSsb(cluster.get(), options);
  CLY_CHECK(dataset.ok());
  return BenchEnv{std::move(cluster), std::move(*dataset)};
}

/// Measures all 13 queries once (shared by the figure benches).
inline std::vector<sim::QueryMeasurement> MeasureAllQueries(BenchEnv* env) {
  std::vector<sim::QueryMeasurement> measurements;
  for (const core::StarQuerySpec& spec : ssb::AllQueries()) {
    auto m = sim::MeasureQuery(env->cluster.get(), env->dataset, spec);
    CLY_CHECK(m.ok());
    measurements.push_back(std::move(*m));
  }
  return measurements;
}

inline std::string Cell(double seconds) {
  return Pad(FormatDouble(seconds, 0), -9);
}

inline std::string SpeedupCell(double base, double other) {
  return Pad(StrCat(FormatDouble(other / base, 1), "x"), -8);
}

}  // namespace bench
}  // namespace clydesdale

#endif  // CLYDESDALE_BENCH_BENCH_COMMON_H_
