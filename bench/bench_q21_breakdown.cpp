// Reproduces the paper's §6.3 stage-by-stage breakdown of query 2.1 on
// Cluster A at SF1000: Clydesdale (~215 s total: ~27 s hash build, ~164 s
// probe at ~67 MB/s, <10 s sort) versus Hive's five-stage mapjoin plan
// (~15,142 s) and repartition plan (~17,700 s).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/clydesdale.h"
#include "mapreduce/job_trace.h"
#include "obs/query_profile.h"

using namespace clydesdale;        // NOLINT(build/namespaces)
using namespace clydesdale::bench; // NOLINT(build/namespaces)

namespace {

/// Walks the merged profile checking the EXPLAIN ANALYZE invariants from the
/// acceptance list: selectivities stay in [0,1] and wall(sum) bounds
/// wall(max) on every node.
void CheckNodeInvariants(const obs::OperatorProfile& node) {
  if (node.rows_in > 0) {
    const double sel = node.selectivity();
    CLY_CHECK(sel >= 0.0 && sel <= 1.0);
  }
  CLY_CHECK(node.wall_ns >= node.wall_max_ns);
  for (const obs::OperatorProfile& child : node.children) {
    CheckNodeInvariants(child);
  }
}

/// Finds the first node named `name` (exact or prefix for scan:<path>)
/// anywhere in the profile tree.
const obs::OperatorProfile* FindNode(const obs::OperatorProfile& node,
                                     const char* prefix) {
  if (node.name.compare(0, std::strlen(prefix), prefix) == 0) return &node;
  for (const obs::OperatorProfile& child : node.children) {
    if (const obs::OperatorProfile* hit = FindNode(child, prefix)) return hit;
  }
  return nullptr;
}

void PrintOutcome(const char* label, const sim::SimOutcome& outcome) {
  std::printf("%s: %.0f s total\n", label, outcome.seconds);
  for (const sim::StageResult& stage : outcome.stages) {
    std::printf("  %-28s %8.0f s   (%d tasks, avg task %.1f s)\n",
                stage.name.c_str(), stage.seconds, stage.num_tasks,
                stage.avg_task_s);
  }
  if (outcome.oom) std::printf("  OOM: %s\n", outcome.oom_detail.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  BenchEnv env = LoadBenchEnv();
  const sim::ClusterSpec spec = sim::ClusterSpec::ClusterA();
  sim::ModelOptions options;
  options.target_sf = TargetScaleFactor();

  auto query = ssb::QueryById("Q2.1");
  CLY_CHECK(query.ok());
  auto m = sim::MeasureQuery(env.cluster.get(), env.dataset, *query);
  CLY_CHECK(m.ok());

  std::printf("Query 2.1 breakdown on Cluster A at SF%.0f (paper §6.3)\n\n",
              options.target_sf);
  std::printf(
      "measured widths: %.1f B/row projected CIF (paper task read 10.8 GB "
      "per node), %.1f B/row full CIF, %.1f B/row RCFile\n\n",
      m->cif_projected_width, m->cif_full_width, m->rcfile_full_width);

  auto cly = sim::ModelClydesdale(spec, *m, options);
  CLY_CHECK(cly.ok());
  PrintOutcome("Clydesdale (paper: 215 s; 27 s build + 164 s probe)", *cly);

  auto mj = sim::ModelHive(spec, *m, hive::JoinStrategy::kMapJoin, options);
  CLY_CHECK(mj.ok());
  PrintOutcome(
      "Hive mapjoin (paper: 15,142 s; stages 2640 / 2040 / 9180 / 720 / 19)",
      *mj);

  auto rp = sim::ModelHive(spec, *m, hive::JoinStrategy::kRepartition,
                           options);
  CLY_CHECK(rp.ok());
  PrintOutcome(
      "Hive repartition (paper: 17,700 s; stages 9720 / 7140 / 420 + agg)",
      *rp);

  std::printf("speedups: %.0fx over mapjoin, %.0fx over repartition "
              "(paper: ~70x, ~82x)\n",
              mj->seconds / cly->seconds, rp->seconds / cly->seconds);

  // With CLY_TRACE_DIR set, re-run Q2.1 through the functional engine with
  // the full observability stack on: span tracing drops a Chrome trace
  // (chrome://tracing / Perfetto) + plain-text timeline there, and the live
  // metrics/history layer adds the Prometheus snapshot (.prom), sampled
  // metrics time series (.metrics.json), text cluster dashboard
  // (.dashboard.txt), and the JSONL job history (.history.jsonl) — the
  // measured counterpart of the modeled breakdown above. run_benches.sh
  // publishes the artifacts.
  const char* trace_dir = std::getenv("CLY_TRACE_DIR");
  if (trace_dir != nullptr && trace_dir[0] != '\0') {
    core::ClydesdaleOptions copts;
    copts.trace = true;
    copts.trace_dir = trace_dir;
    copts.metrics = true;
    copts.history = true;
    copts.profile = true;
    core::ClydesdaleEngine engine(env.cluster.get(), env.dataset.star, copts);
    auto traced = engine.Execute(*query);
    CLY_CHECK(traced.ok());
    const mr::JobReport& report = traced->stage_reports[0];
    std::printf("\ntraced functional run (SF%g): %s\n",
                MeasurementScaleFactor(),
                mr::CriticalPath(report).ToString().c_str());
    std::printf("live metrics: %zu samples, %lld straggler flag(s)\n",
                report.metrics_series.samples.size(),
                static_cast<long long>(
                    report.counters.Get(mr::kCounterStragglerAttempts)));

    // EXPLAIN ANALYZE acceptance invariants on the merged profile: the fact
    // scan feeds the probe row-for-row, every selectivity is a real
    // fraction, and the profiled task-attempt envelope accounts for the job
    // wall clock (within 5%, minus a 2 ms floor for sub-smoke runs where
    // split planning dominates).
    const obs::QueryProfile& profile = report.profile;
    CLY_CHECK(!profile.empty());
    for (const obs::OperatorProfile& root : profile.roots) {
      CheckNodeInvariants(root);
    }
    const obs::OperatorProfile* map_root = nullptr;
    for (const obs::OperatorProfile& root : profile.roots) {
      if (root.name == "map") map_root = &root;
    }
    CLY_CHECK(map_root != nullptr);
    const obs::OperatorProfile* scan = FindNode(*map_root, "scan:");
    const obs::OperatorProfile* probe = FindNode(*map_root, "probe");
    CLY_CHECK(scan != nullptr && probe != nullptr);
    CLY_CHECK(scan->rows_out == probe->rows_in);
    const double span_s = profile.ProfiledSpanSeconds();
    CLY_CHECK(span_s <= report.wall_seconds + 1e-6);
    CLY_CHECK(span_s >= 0.95 * report.wall_seconds - 0.002);

    std::printf("\n%s\n", obs::ExplainAnalyzeText(profile).c_str());
    std::printf("trace + metrics + history + profile artifacts written to "
                "%s\n", trace_dir);

    // Profiler overhead A/B (acceptance: <=3% with the knob on at bench
    // scale, exactly zero instrumentation when off). Min-of-3 untraced runs
    // per arm so scheduler noise doesn't masquerade as overhead.
    double wall_off = 0, wall_on = 0;
    for (int arm = 0; arm < 2; ++arm) {
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        core::ClydesdaleOptions plain;
        plain.profile = (arm == 1);
        core::ClydesdaleEngine ab(env.cluster.get(), env.dataset.star, plain);
        Stopwatch timer;
        auto run = ab.Execute(*query);
        const double secs = timer.ElapsedSeconds();
        CLY_CHECK(run.ok());
        if (arm == 0) CLY_CHECK(run->stage_reports[0].profile.empty());
        if (rep == 0 || secs < best) best = secs;
      }
      (arm == 0 ? wall_off : wall_on) = best;
    }
    std::printf("profiler overhead: off=%.3fs on=%.3fs (%+.2f%%)\n", wall_off,
                wall_on, 100.0 * (wall_on - wall_off) / wall_off);
  }

  // With CLY_MEMORY_JSON set, measure the hierarchical memory accounting on
  // the functional engine: a profiled Q2.1 reports each operator's peak
  // resident bytes (dim tables, scan arenas, partial aggregates, shuffle
  // runs), and a min-of-3 A/B with obs.mem.enabled off vs on bounds the
  // tracking overhead. Both land in BENCH_memory.json via run_benches.sh.
  const char* memory_json = std::getenv("CLY_MEMORY_JSON");
  if (memory_json != nullptr && memory_json[0] != '\0') {
    core::ClydesdaleOptions mopts;
    mopts.profile = true;
    core::ClydesdaleEngine engine(env.cluster.get(), env.dataset.star, mopts);
    auto run = engine.Execute(*query);
    CLY_CHECK(run.ok());
    const obs::QueryProfile& profile = run->stage_reports[0].profile;
    CLY_CHECK(!profile.empty());

    const char* ops[] = {"scan:", "probe", "aggregate", "shuffle"};
    const char* keys[] = {"scan", "probe", "aggregate", "shuffle"};
    uint64_t peaks[4] = {0, 0, 0, 0};
    std::printf("\npeak memory per operator (tracked, Q2.1):\n");
    for (int i = 0; i < 4; ++i) {
      const obs::OperatorProfile* node = nullptr;
      for (const obs::OperatorProfile& root : profile.roots) {
        if ((node = FindNode(root, ops[i])) != nullptr) break;
      }
      CLY_CHECK(node != nullptr);
      // Acceptance: every memory-bearing operator reports a real footprint.
      CLY_CHECK(node->mem_peak_bytes > 0);
      CLY_CHECK(node->mem_peak_bytes >= node->mem_current_bytes);
      peaks[i] = node->mem_peak_bytes;
      std::printf("  %-10s %10.1f KiB peak (%.1f KiB still resident at "
                  "task end)\n",
                  keys[i], node->mem_peak_bytes / 1024.0,
                  node->mem_current_bytes / 1024.0);
    }
    const int64_t job_peak =
        run->Counter(mr::kCounterMemJobPeakBytes);
    CLY_CHECK(job_peak > 0);
    std::printf("  job peak (sum of per-node trackers): %.1f KiB\n",
                job_peak / 1024.0);

    // Tracking overhead A/B: min-of-3 per arm, tracker off first. The
    // acceptance bound is 2% relative with a 50 ms absolute floor so
    // sub-smoke runs (total wall well under a second) don't fail on
    // scheduler jitter that has nothing to do with the atomics.
    double wall_off = 0, wall_on = 0;
    for (int arm = 0; arm < 2; ++arm) {
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        core::ClydesdaleOptions ab_opts;
        ab_opts.mem_tracking = (arm == 1);
        core::ClydesdaleEngine ab(env.cluster.get(), env.dataset.star,
                                  ab_opts);
        Stopwatch timer;
        auto ab_run = ab.Execute(*query);
        const double secs = timer.ElapsedSeconds();
        CLY_CHECK(ab_run.ok());
        if (rep == 0 || secs < best) best = secs;
      }
      (arm == 0 ? wall_off : wall_on) = best;
    }
    const double overhead_pct = 100.0 * (wall_on - wall_off) / wall_off;
    std::printf("memory tracking overhead: off=%.3fs on=%.3fs (%+.2f%%)\n",
                wall_off, wall_on, overhead_pct);
    CLY_CHECK(wall_on <= 1.02 * wall_off + 0.050);

    std::FILE* out = std::fopen(memory_json, "w");
    CLY_CHECK(out != nullptr);
    std::fprintf(out, "{\n  \"operator_peak_bytes\": {\n");
    for (int i = 0; i < 4; ++i) {
      std::fprintf(out, "    \"%s\": %llu%s\n", keys[i],
                   static_cast<unsigned long long>(peaks[i]),
                   i < 3 ? "," : "");
    }
    std::fprintf(out,
                 "  },\n  \"job_peak_bytes\": %lld,\n"
                 "  \"wall_seconds_tracking_off\": %.6f,\n"
                 "  \"wall_seconds_tracking_on\": %.6f,\n"
                 "  \"overhead_pct\": %.4f\n}\n",
                 static_cast<long long>(job_peak), wall_off, wall_on,
                 overhead_pct);
    std::fclose(out);
    std::printf("wrote %s\n", memory_json);
  }

  // With CLY_Q21_JSON set, A/B the shuffle handoff on the functional
  // engine: "barrier" waits for every map before reducers fetch, "pipelined"
  // lets reducers fetch published runs while maps still run. Output is
  // byte-identical either way; the JSON captures the wall-clock delta and
  // the measured overlap window.
  const char* q21_json = std::getenv("CLY_Q21_JSON");
  if (q21_json != nullptr && q21_json[0] != '\0') {
    std::FILE* out = std::fopen(q21_json, "w");
    CLY_CHECK(out != nullptr);
    std::fprintf(out, "{\n");
    const char* mode_names[] = {"barrier", "pipelined"};
    for (int mode = 0; mode < 2; ++mode) {
      core::ClydesdaleOptions copts;
      copts.trace = true;  // in-memory spans only: needed for the overlap
      copts.pipelined_shuffle = (mode == 1);
      core::ClydesdaleEngine engine(env.cluster.get(), env.dataset.star,
                                    copts);
      auto run = engine.Execute(*query);
      CLY_CHECK(run.ok());
      const mr::JobReport& r = run->stage_reports[0];
      const mr::CriticalPathReport path = mr::CriticalPath(r);
      std::fprintf(out,
                   "  \"%s\": {\"wall_seconds\": %.6f, "
                   "\"map_phase_seconds\": %.6f, "
                   "\"shuffle_overlap_seconds\": %.6f}%s\n",
                   mode_names[mode], r.wall_seconds, path.map_phase_seconds,
                   path.shuffle_overlap_seconds, mode == 0 ? "," : "");
      std::printf("%s Q2.1: %.3f s wall, %.3f s shuffle overlap\n",
                  mode_names[mode], r.wall_seconds,
                  path.shuffle_overlap_seconds);
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", q21_json);
  }
  return 0;
}
