// Reproduces paper Figure 7: Clydesdale vs Hive on the Star Schema Benchmark
// at SF1000, Cluster A (8 workers, 16 GB, 8 disks, 1 GbE).

#include "fig7_fig8_common.h"

int main() {
  return clydesdale::bench::RunFigure(
      clydesdale::sim::ClusterSpec::ClusterA(), "Figure 7");
}
