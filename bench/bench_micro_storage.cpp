// Micro-benchmarks: storage format scan rates on the simulated DFS — the
// functional-layer view of the paper's columnar-vs-row tradeoff (§4.1) and
// the binary-vs-text serde gap that burdens the Hive baseline.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "hdfs/dfs.h"
#include "ssb/dbgen.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace {

constexpr int kRows = 40000;

/// One shared DFS with the lineorder sample in every format.
struct Fixture {
  Fixture() : dfs(MakeOptions()) {
    SetLogThreshold(LogLevel::kError);
    ssb::SsbGenerator gen(0.01);
    auto stream = gen.Lineorders();
    std::vector<Row> rows;
    Row row;
    while (static_cast<int>(rows.size()) < kRows && stream.Next(&row)) {
      rows.push_back(row);
    }
    for (const char* format :
         {storage::kFormatText, storage::kFormatBinaryRow, storage::kFormatCif,
          storage::kFormatRcFile}) {
      storage::TableDesc desc;
      desc.path = std::string("/t/") + format;
      desc.format = format;
      desc.schema = ssb::LineorderSchema();
      desc.rows_per_split = 8192;
      auto writer = storage::OpenTableWriter(&dfs, desc);
      CLY_CHECK(writer.ok());
      for (const Row& r : rows) CLY_CHECK_OK((*writer)->Append(r));
      CLY_CHECK_OK((*writer)->Close());
    }
  }

  static hdfs::DfsOptions MakeOptions() {
    hdfs::DfsOptions options;
    options.num_nodes = 2;
    options.block_size = 4 * 1024 * 1024;
    options.replication = 1;
    return options;
  }

  storage::TableDesc Table(const std::string& format) {
    auto desc = storage::LoadTableDesc(dfs, "/t/" + format);
    CLY_CHECK(desc.ok());
    return *desc;
  }

  hdfs::MiniDfs dfs;
};

Fixture& SharedFixture() {
  static Fixture* const kFixture = new Fixture();
  return *kFixture;
}

void ScanBenchmark(benchmark::State& state, const char* format,
                   bool projected) {
  Fixture& f = SharedFixture();
  const storage::TableDesc desc = f.Table(format);
  storage::ScanOptions scan;
  if (projected) {
    // Q2.1's four fact columns.
    scan.projection = {"lo_orderdate", "lo_partkey", "lo_suppkey",
                       "lo_revenue"};
  }
  uint64_t bytes = 0;
  for (auto _ : state) {
    hdfs::IoStats stats;
    scan.stats = &stats;
    auto splits = storage::ListTableSplits(f.dfs, desc);
    CLY_CHECK(splits.ok());
    int64_t rows = 0;
    Row row;
    for (const auto& split : *splits) {
      auto reader = storage::OpenSplitRowReader(f.dfs, desc, split, scan);
      CLY_CHECK(reader.ok());
      while (true) {
        auto more = (*reader)->Next(&row);
        CLY_CHECK(more.ok());
        if (!*more) break;
        ++rows;
      }
    }
    CLY_CHECK(rows == kRows);
    bytes += stats.TotalRead();
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["hdfs_bytes/scan"] =
      static_cast<double>(bytes) / state.iterations();
}

void BM_ScanTextFull(benchmark::State& s) { ScanBenchmark(s, "text", false); }
void BM_ScanBinRowFull(benchmark::State& s) {
  ScanBenchmark(s, "binrow", false);
}
void BM_ScanCifFull(benchmark::State& s) { ScanBenchmark(s, "cif", false); }
void BM_ScanRcFileFull(benchmark::State& s) {
  ScanBenchmark(s, "rcfile", false);
}
void BM_ScanTextProjected(benchmark::State& s) {
  ScanBenchmark(s, "text", true);
}
void BM_ScanBinRowProjected(benchmark::State& s) {
  ScanBenchmark(s, "binrow", true);
}
void BM_ScanCifProjected(benchmark::State& s) { ScanBenchmark(s, "cif", true); }
void BM_ScanRcFileProjected(benchmark::State& s) {
  ScanBenchmark(s, "rcfile", true);
}

BENCHMARK(BM_ScanTextFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanBinRowFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanCifFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanRcFileFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanTextProjected)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanBinRowProjected)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanCifProjected)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanRcFileProjected)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace clydesdale
