// Micro-benchmarks: storage format scan rates on the simulated DFS — the
// functional-layer view of the paper's columnar-vs-row tradeoff (§4.1) and
// the binary-vs-text serde gap that burdens the Hive baseline.

#include <benchmark/benchmark.h>

#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "hdfs/dfs.h"
#include "ssb/dbgen.h"
#include "storage/byte_io.h"
#include "storage/column_codec.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace {

constexpr int kRows = 40000;

/// One shared DFS with the lineorder sample in every format.
struct Fixture {
  Fixture() : dfs(MakeOptions()) {
    SetLogThreshold(LogLevel::kError);
    ssb::SsbGenerator gen(0.01);
    auto stream = gen.Lineorders();
    std::vector<Row> rows;
    Row row;
    while (static_cast<int>(rows.size()) < kRows && stream.Next(&row)) {
      rows.push_back(row);
    }
    for (const char* format :
         {storage::kFormatText, storage::kFormatBinaryRow, storage::kFormatCif,
          storage::kFormatRcFile}) {
      storage::TableDesc desc;
      desc.path = std::string("/t/") + format;
      desc.format = format;
      desc.schema = ssb::LineorderSchema();
      desc.rows_per_split = 8192;
      auto writer = storage::OpenTableWriter(&dfs, desc);
      CLY_CHECK(writer.ok());
      for (const Row& r : rows) CLY_CHECK_OK((*writer)->Append(r));
      CLY_CHECK_OK((*writer)->Close());
    }
  }

  static hdfs::DfsOptions MakeOptions() {
    hdfs::DfsOptions options;
    options.num_nodes = 2;
    options.block_size = 4 * 1024 * 1024;
    options.replication = 1;
    return options;
  }

  storage::TableDesc Table(const std::string& format) {
    auto desc = storage::LoadTableDesc(dfs, "/t/" + format);
    CLY_CHECK(desc.ok());
    return *desc;
  }

  hdfs::MiniDfs dfs;
};

Fixture& SharedFixture() {
  static Fixture* const kFixture = new Fixture();
  return *kFixture;
}

void ScanBenchmark(benchmark::State& state, const char* format,
                   bool projected) {
  Fixture& f = SharedFixture();
  const storage::TableDesc desc = f.Table(format);
  storage::ScanOptions scan;
  if (projected) {
    // Q2.1's four fact columns.
    scan.projection = {"lo_orderdate", "lo_partkey", "lo_suppkey",
                       "lo_revenue"};
  }
  uint64_t bytes = 0;
  for (auto _ : state) {
    hdfs::IoStats stats;
    scan.stats = &stats;
    auto splits = storage::ListTableSplits(f.dfs, desc);
    CLY_CHECK(splits.ok());
    int64_t rows = 0;
    Row row;
    for (const auto& split : *splits) {
      auto reader = storage::OpenSplitRowReader(f.dfs, desc, split, scan);
      CLY_CHECK(reader.ok());
      while (true) {
        auto more = (*reader)->Next(&row);
        CLY_CHECK(more.ok());
        if (!*more) break;
        ++rows;
      }
    }
    CLY_CHECK(rows == kRows);
    bytes += stats.TotalRead();
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["hdfs_bytes/scan"] =
      static_cast<double>(bytes) / state.iterations();
}

void BM_ScanTextFull(benchmark::State& s) { ScanBenchmark(s, "text", false); }
void BM_ScanBinRowFull(benchmark::State& s) {
  ScanBenchmark(s, "binrow", false);
}
void BM_ScanCifFull(benchmark::State& s) { ScanBenchmark(s, "cif", false); }
void BM_ScanRcFileFull(benchmark::State& s) {
  ScanBenchmark(s, "rcfile", false);
}
void BM_ScanTextProjected(benchmark::State& s) {
  ScanBenchmark(s, "text", true);
}
void BM_ScanBinRowProjected(benchmark::State& s) {
  ScanBenchmark(s, "binrow", true);
}
void BM_ScanCifProjected(benchmark::State& s) { ScanBenchmark(s, "cif", true); }
void BM_ScanRcFileProjected(benchmark::State& s) {
  ScanBenchmark(s, "rcfile", true);
}

BENCHMARK(BM_ScanTextFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanBinRowFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanCifFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanRcFileFull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanTextProjected)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanBinRowProjected)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanCifProjected)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanRcFileProjected)->Unit(benchmark::kMillisecond);

// --- compressed-domain key probing (CIF v3 RLE blocks) -----------------------
// The run-aware probe's core claim: a membership probe against an RLE
// foreign-key block needs one hash lookup per *run*, while the classic path
// decodes the block and probes per *row*. Same validated IntBlockView, same
// filter, same output bitmap — only the probing granularity differs.

constexpr uint32_t kProbeRows = 65536;
constexpr uint32_t kProbeRunLen = 64;  // dimension keys in chronology-length runs

struct RleProbeFixture {
  RleProbeFixture() {
    // 1024 runs of 64 rows; every 3rd key is a member (join selectivity 1/3).
    ColumnVector col(TypeKind::kInt64);
    for (uint32_t i = 0; i < kProbeRows; ++i) {
      col.AppendInt64((i / kProbeRunLen) * 7);
    }
    storage::ByteWriter writer;
    storage::IntBlockStats stats;
    const uint8_t tag = storage::EncodeIntPayload(col, &writer, &stats);
    CLY_CHECK(tag == storage::kEncRle);
    payload = writer.Release();
    CLY_CHECK(storage::ParseIntPayload(payload.data(), payload.size(),
                                       kProbeRows, TypeKind::kInt64, tag,
                                       &view)
                  .ok());
    for (int64_t key = 0; key < (kProbeRows / kProbeRunLen) * 7; key += 21) {
      keys.insert(key);
    }
  }

  std::vector<uint8_t> payload;
  storage::IntBlockView view;
  std::unordered_set<int64_t> keys;
};

RleProbeFixture& ProbeFixture() {
  static RleProbeFixture* const kFixture = new RleProbeFixture();
  return *kFixture;
}

void BM_RleDecodeThenProbe(benchmark::State& state) {
  RleProbeFixture& f = ProbeFixture();
  ColumnVector decoded(TypeKind::kInt64);
  std::vector<uint8_t> hits(kProbeRows);
  for (auto _ : state) {
    decoded.Clear();
    storage::DecodeIntView(f.view, TypeKind::kInt64, &decoded);
    const std::vector<int64_t>& vals = decoded.i64();
    for (uint32_t i = 0; i < kProbeRows; ++i) {
      hits[i] = f.keys.count(vals[i]) > 0;
    }
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() * kProbeRows);
}

void BM_RleRunProbe(benchmark::State& state) {
  RleProbeFixture& f = ProbeFixture();
  std::vector<uint8_t> hits(kProbeRows);
  for (auto _ : state) {
    uint32_t i = 0;
    for (uint32_t r = 0; r < f.view.nruns; ++r) {
      const uint8_t hit = f.keys.count(f.view.run_values[r]) > 0;
      std::fill_n(hits.data() + i, f.view.run_lengths[r], hit);
      i += f.view.run_lengths[r];
    }
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() * kProbeRows);
}

BENCHMARK(BM_RleDecodeThenProbe)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RleRunProbe)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace clydesdale
