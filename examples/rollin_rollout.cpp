// Fact-table roll-in and roll-out (paper §2): because CIF keeps the fact
// table unsorted, new data lands as a fresh segment of column files — no
// merge, no rewrite — and old data rolls out by deleting a segment. This is
// the operational advantage the paper claims over sorted-projection designs
// like Llama, demonstrated on a rolling one-"month" retention window.

#include <cstdio>

#include "common/strings.h"
#include "core/clydesdale.h"
#include "sql/parser.h"
#include "ssb/dbgen.h"
#include "ssb/loader.h"
#include "storage/cif.h"

using namespace clydesdale;  // NOLINT(build/namespaces)

namespace {

Result<int64_t> TotalRevenue(mr::MrCluster* cluster,
                             const core::StarSchema& star) {
  CLY_ASSIGN_OR_RETURN(
      core::StarQuerySpec query,
      sql::ParseStarQuery(
          "SELECT SUM(lo_revenue) AS revenue FROM lineorder, supplier "
          "WHERE lo_suppkey = s_suppkey AND s_region = 'ASIA'",
          star));
  core::ClydesdaleEngine engine(cluster, star, {});
  CLY_ASSIGN_OR_RETURN(core::QueryResult result, engine.Execute(query));
  return result.rows.empty() ? int64_t{0} : result.rows[0].Get(0).i64();
}

uint64_t FactBytesOnDisk(mr::MrCluster* cluster, const std::string& path) {
  uint64_t total = 0;
  for (const std::string& file : cluster->dfs()->List(path + "/")) {
    auto info = cluster->dfs()->Stat(file);
    if (info.ok()) total += info->length;
  }
  return total;
}

}  // namespace

int main() {
  SetLogThreshold(LogLevel::kWarning);
  mr::ClusterOptions copts;
  copts.num_nodes = 4;
  copts.dfs_block_size = 256 * 1024;
  mr::MrCluster cluster(copts);

  ssb::SsbLoadOptions load;
  load.scale_factor = 0.005;
  auto dataset = ssb::LoadSsb(&cluster, load);
  CLY_CHECK(dataset.ok());
  const std::string fact_path = dataset->star.fact().path;

  auto refreshed_star = [&]() {
    auto desc = cluster.GetTable(fact_path);
    CLY_CHECK(desc.ok());
    core::StarSchema star = dataset->star;
    *star.mutable_fact() = *desc;
    return star;
  };

  auto report = [&](const char* label) {
    auto desc = cluster.GetTable(fact_path);
    CLY_CHECK(desc.ok());
    auto revenue = TotalRevenue(&cluster, refreshed_star());
    CLY_CHECK(revenue.ok());
    std::printf("%-28s %8llu rows in %d segment(s), %s on disk, "
                "ASIA revenue %lld\n",
                label, static_cast<unsigned long long>(desc->num_rows),
                desc->num_segments(),
                HumanBytes(FactBytesOnDisk(&cluster, fact_path)).c_str(),
                static_cast<long long>(*revenue));
  };

  report("initial load");

  // --- roll in three months of new orders --------------------------------------
  for (int month = 1; month <= 3; ++month) {
    auto desc = cluster.GetTable(fact_path);
    CLY_CHECK(desc.ok());
    const uint64_t before = cluster.dfs()->TotalIo().bytes_written;
    auto writer = storage::AppendCifSegment(cluster.dfs(), *desc);
    CLY_CHECK(writer.ok());
    ssb::SsbGenerator gen(0.002, /*seed=*/9000 + month);
    auto stream = gen.Lineorders();
    Row row;
    while (stream.Next(&row)) CLY_CHECK_OK((*writer)->Append(row));
    CLY_CHECK_OK((*writer)->Close());
    cluster.InvalidateTable(fact_path);
    const uint64_t appended = cluster.dfs()->TotalIo().bytes_written - before;
    std::printf("  roll-in month %d wrote %s (existing segments untouched)\n",
                month, HumanBytes(appended).c_str());
    report(StrCat("after roll-in ", month).c_str());
  }

  // --- roll out the oldest data (retention window) ------------------------------
  {
    auto desc = cluster.GetTable(fact_path);
    CLY_CHECK(desc.ok());
    CLY_CHECK_OK(storage::RollOutCifSegment(cluster.dfs(), *desc, 0));
    cluster.InvalidateTable(fact_path);
    std::printf("  rolled out segment 0 (the original load)\n");
    report("after roll-out");
  }
  std::printf("\nno fact-table rewrite occurred at any step — the paper's "
              "contrast with sorted-projection designs (Llama, §2)\n");
  return 0;
}
