// Quickstart: stand up a simulated Hadoop cluster, register a tiny star
// schema, and run one star-join query through Clydesdale.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/clydesdale.h"
#include "mapreduce/engine.h"
#include "sql/parser.h"
#include "ssb/loader.h"
#include "ssb/queries.h"

using namespace clydesdale;  // NOLINT(build/namespaces)

int main() {
  SetLogThreshold(LogLevel::kWarning);

  // 1. A simulated 4-node Hadoop cluster (HDFS + MapReduce slots).
  mr::ClusterOptions copts;
  copts.num_nodes = 4;
  copts.map_slots_per_node = 2;
  copts.dfs_block_size = 256 * 1024;
  mr::MrCluster cluster(copts);

  // 2. Generate and load the Star Schema Benchmark at a laptop scale:
  //    fact table in columnar CIF in HDFS, dimensions replicated onto every
  //    node's local disk.
  ssb::SsbLoadOptions load;
  load.scale_factor = 0.01;
  auto dataset = ssb::LoadSsb(&cluster, load);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded SSB sf=%.2f: %llu lineorder rows\n", load.scale_factor,
              static_cast<unsigned long long>(dataset->lineorder_rows));

  // 3. Run SSB query 3.1: revenue by customer nation, supplier nation and
  //    year, for Asia-Asia trade in 1992-1997.
  auto query = ssb::QueryById("Q3.1");
  CLY_CHECK(query.ok());
  core::ClydesdaleEngine engine(&cluster, dataset->star, {});
  auto result = engine.Execute(*query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%s -> %zu rows (c_nation | s_nation | d_year | revenue):\n",
              query->id.c_str(), result->rows.size());
  for (size_t i = 0; i < result->rows.size() && i < 10; ++i) {
    std::printf("  %s\n", result->rows[i].ToString().c_str());
  }
  if (result->rows.size() > 10) std::printf("  ...\n");

  const mr::JobReport& report = result->stage_reports[0];
  std::printf("\none MapReduce job: %s\n", report.Summary().c_str());
  std::printf("hash tables built: %lld (once per node, shared by all join "
              "threads)\n",
              static_cast<long long>(
                  report.counters.Get(core::kCounterHashBuilds)));

  // 4. Ad-hoc queries can also be written in SQL.
  auto ad_hoc = sql::ParseStarQuery(
      "SELECT d_year, SUM(lo_revenue) AS revenue "
      "FROM lineorder, date, supplier "
      "WHERE lo_orderdate = d_datekey AND lo_suppkey = s_suppkey "
      "AND s_nation = 'JAPAN' GROUP BY d_year ORDER BY d_year",
      dataset->star);
  CLY_CHECK(ad_hoc.ok());
  auto sql_result = engine.Execute(*ad_hoc);
  CLY_CHECK(sql_result.ok());
  std::printf("\nSQL: revenue from Japanese suppliers by year:\n");
  for (const Row& row : sql_result->rows) {
    std::printf("  %s\n", row.ToString().c_str());
  }
  return 0;
}
