// A miniature SQL shell over a loaded SSB deployment: type star-join SQL,
// get rows. Reads queries from argv or stdin (one per line); exits at EOF.
//
//   ./build/examples/sql_shell "SELECT d_year, SUM(lo_revenue) AS revenue \
//       FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year \
//       ORDER BY d_year"

#include <cstdio>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/clydesdale.h"
#include "sql/parser.h"
#include "ssb/loader.h"

using namespace clydesdale;  // NOLINT(build/namespaces)

namespace {

void RunOne(core::ClydesdaleEngine* engine, const core::StarSchema& star,
            const std::string& sql) {
  auto spec = sql::ParseStarQuery(sql, star);
  if (!spec.ok()) {
    std::printf("error: %s\n", spec.status().ToString().c_str());
    return;
  }
  Stopwatch timer;
  auto result = engine->Execute(*spec);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  const std::vector<std::string> header = core::OutputColumnsOf(*spec);
  std::printf("%s\n", StrJoin(header, " | ").c_str());
  for (size_t i = 0; i < result->rows.size() && i < 40; ++i) {
    std::printf("%s\n", result->rows[i].ToString().c_str());
  }
  if (result->rows.size() > 40) {
    std::printf("... (%zu rows)\n", result->rows.size());
  }
  std::printf("(%zu rows, %.3f s, %s scanned)\n\n", result->rows.size(),
              timer.ElapsedSeconds(),
              HumanBytes(result->stage_reports[0].TotalMapInputBytes())
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  SetLogThreshold(LogLevel::kWarning);
  mr::ClusterOptions copts;
  copts.num_nodes = 4;
  copts.map_slots_per_node = 2;
  copts.dfs_block_size = 256 * 1024;
  mr::MrCluster cluster(copts);

  ssb::SsbLoadOptions load;
  load.scale_factor = 0.01;
  auto dataset = ssb::LoadSsb(&cluster, load);
  CLY_CHECK(dataset.ok());
  core::ClydesdaleEngine engine(&cluster, dataset->star, {});

  std::printf("SSB sf=%.2f loaded. Tables: lineorder, customer, supplier, "
              "part, date.\n",
              load.scale_factor);

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      RunOne(&engine, dataset->star, argv[i]);
    }
    return 0;
  }
  std::printf("Enter star-join SQL (one statement per line, EOF to quit):\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    RunOne(&engine, dataset->star, line);
  }
  return 0;
}
