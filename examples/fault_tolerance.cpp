// Fault tolerance walkthrough (paper §1, §4): Clydesdale inherits HDFS's
// replication. This example kills a datanode, wipes another node's local
// dimension cache, and shows that queries still return correct answers —
// then re-replicates to restore the replication factor.

#include <cstdio>

#include "common/strings.h"
#include "core/clydesdale.h"
#include "ssb/loader.h"
#include "ssb/queries.h"
#include "ssb/reference_executor.h"

using namespace clydesdale;  // NOLINT(build/namespaces)

int main() {
  SetLogThreshold(LogLevel::kWarning);
  mr::ClusterOptions copts;
  copts.num_nodes = 5;
  copts.map_slots_per_node = 2;
  copts.dfs_block_size = 128 * 1024;
  copts.dfs_replication = 3;
  mr::MrCluster cluster(copts);

  ssb::SsbLoadOptions load;
  load.scale_factor = 0.005;
  auto dataset = ssb::LoadSsb(&cluster, load);
  CLY_CHECK(dataset.ok());

  auto query = ssb::QueryById("Q2.2");
  CLY_CHECK(query.ok());
  auto expected = ssb::ExecuteReference(&cluster, dataset->star, *query);
  CLY_CHECK(expected.ok());

  core::ClydesdaleEngine engine(&cluster, dataset->star, {});

  auto run_and_check = [&](const char* label) {
    auto result = engine.Execute(*query);
    CLY_CHECK(result.ok());
    const bool correct = result->rows == *expected;
    const auto& report = result->stage_reports[0];
    std::printf("%-34s -> %zu rows, %s, %d/%zu data-local maps, %s remote\n",
                label, result->rows.size(),
                correct ? "correct" : "WRONG", report.DataLocalMaps(),
                report.map_tasks.size(),
                HumanBytes([&] {
                  uint64_t remote = 0;
                  for (const auto& t : report.map_tasks) {
                    remote += t.hdfs_remote_bytes;
                  }
                  return remote;
                }()).c_str());
    CLY_CHECK(correct);
  };

  run_and_check("healthy cluster");

  // --- datanode failure ----------------------------------------------------------
  // Block replicas on node 2 vanish; map tasks scheduled elsewhere read the
  // surviving replicas (some now remotely).
  CLY_CHECK_OK(cluster.dfs()->KillDataNode(2));
  std::printf("\n*** datanode 2 killed (its block replicas are gone)\n");
  run_and_check("after datanode failure");

  // --- local dimension cache loss ---------------------------------------------------
  // Node 4 loses its local dimension replicas (disk failure); the first
  // task there re-fetches the master copies from HDFS (paper §4).
  cluster.local_store(4)->Wipe();
  std::printf("\n*** node 4 local dimension cache wiped\n");
  run_and_check("after dimension cache loss");
  // Only the dimensions the query touched were re-fetched: Q2.2 joins part,
  // supplier and date but never customer.
  auto replica_restored = [&](const char* name) {
    auto dim = dataset->star.dim(name);
    CLY_CHECK(dim.ok());
    return cluster.local_store(4)->Exists((*dim)->local_path) ? "yes" : "no";
  };
  std::printf("node 4 re-fetched replicas on demand: part=%s supplier=%s "
              "customer=%s (unused by Q2.2)\n",
              replica_restored("part"), replica_restored("supplier"),
              replica_restored("customer"));

  // --- recovery ------------------------------------------------------------------------
  CLY_CHECK_OK(cluster.dfs()->ReviveDataNode(2));
  auto copied = cluster.dfs()->ReReplicate();
  CLY_CHECK(copied.ok());
  std::printf("\n*** datanode 2 replaced; re-replication copied %s to "
              "restore 3x replication\n",
              HumanBytes(*copied).c_str());
  run_and_check("after recovery");
  return 0;
}
