// Clydesdale beyond SSB: define your own star schema — a web-analytics
// warehouse with a pageviews fact table and page / visitor dimensions —
// load it through the public storage API, and run ad-hoc star queries.

#include <cstdio>

#include "common/random.h"
#include "common/strings.h"
#include "core/clydesdale.h"
#include "mapreduce/engine.h"
#include "storage/table_format.h"

using namespace clydesdale;  // NOLINT(build/namespaces)

namespace {

constexpr int kNumPages = 200;
constexpr int kNumVisitors = 500;
constexpr int kNumViews = 60000;

const char* const kSections[] = {"news", "sports", "tech", "culture"};
const char* const kCountries[] = {"DE", "US", "JP", "BR", "IN"};
const char* const kDevices[] = {"desktop", "mobile", "tablet"};

Status LoadWarehouse(mr::MrCluster* cluster, core::StarSchema* star) {
  Random rng(2026);

  // --- pages dimension ---------------------------------------------------------
  storage::TableDesc pages;
  pages.path = "/web/pages";
  pages.format = storage::kFormatBinaryRow;
  pages.schema = Schema::Make({{"pg_id", TypeKind::kInt32, 4},
                               {"pg_section", TypeKind::kString, 7},
                               {"pg_paywalled", TypeKind::kInt32, 4}});
  {
    CLY_ASSIGN_OR_RETURN(auto writer,
                         storage::OpenTableWriter(cluster->dfs(), pages));
    for (int i = 1; i <= kNumPages; ++i) {
      CLY_RETURN_IF_ERROR(writer->Append(
          Row({Value(int32_t{i}), Value(kSections[rng.Uniform(0, 3)]),
               Value(static_cast<int32_t>(rng.Bernoulli(0.3) ? 1 : 0))})));
    }
    CLY_RETURN_IF_ERROR(writer->Close());
  }

  // --- visitors dimension --------------------------------------------------------
  storage::TableDesc visitors;
  visitors.path = "/web/visitors";
  visitors.format = storage::kFormatBinaryRow;
  visitors.schema = Schema::Make({{"vi_id", TypeKind::kInt32, 4},
                                  {"vi_country", TypeKind::kString, 3},
                                  {"vi_device", TypeKind::kString, 8}});
  {
    CLY_ASSIGN_OR_RETURN(auto writer,
                         storage::OpenTableWriter(cluster->dfs(), visitors));
    for (int i = 1; i <= kNumVisitors; ++i) {
      CLY_RETURN_IF_ERROR(writer->Append(
          Row({Value(int32_t{i}), Value(kCountries[rng.Uniform(0, 4)]),
               Value(kDevices[rng.Uniform(0, 2)])})));
    }
    CLY_RETURN_IF_ERROR(writer->Close());
  }

  // --- pageviews fact table (columnar CIF) -----------------------------------------
  storage::TableDesc views;
  views.path = "/web/pageviews";
  views.format = storage::kFormatCif;
  views.schema = Schema::Make({{"pv_page", TypeKind::kInt32, 4},
                               {"pv_visitor", TypeKind::kInt32, 4},
                               {"pv_ms_on_page", TypeKind::kInt32, 4},
                               {"pv_ad_cents", TypeKind::kInt32, 4}});
  views.rows_per_split = 4096;
  {
    CLY_ASSIGN_OR_RETURN(auto writer,
                         storage::OpenTableWriter(cluster->dfs(), views));
    for (int i = 0; i < kNumViews; ++i) {
      CLY_RETURN_IF_ERROR(writer->Append(
          Row({Value(static_cast<int32_t>(rng.Uniform(1, kNumPages))),
               Value(static_cast<int32_t>(rng.Uniform(1, kNumVisitors))),
               Value(static_cast<int32_t>(rng.Uniform(1000, 600000))),
               Value(static_cast<int32_t>(rng.Uniform(0, 80)))})));
    }
    CLY_RETURN_IF_ERROR(writer->Close());
  }

  // --- register the star + install dimension replicas --------------------------------
  CLY_ASSIGN_OR_RETURN(storage::TableDesc fact,
                       cluster->GetTable(views.path));
  core::DimTableInfo page_dim{"pages", pages, "/dimcache/web/pages", "pg_id"};
  CLY_ASSIGN_OR_RETURN(page_dim.desc, cluster->GetTable(pages.path));
  core::DimTableInfo visitor_dim{"visitors", visitors,
                                 "/dimcache/web/visitors", "vi_id"};
  CLY_ASSIGN_OR_RETURN(visitor_dim.desc, cluster->GetTable(visitors.path));
  CLY_RETURN_IF_ERROR(core::ReplicateDimensionToAllNodes(cluster, page_dim));
  CLY_RETURN_IF_ERROR(
      core::ReplicateDimensionToAllNodes(cluster, visitor_dim));
  *star = core::StarSchema(fact, {page_dim, visitor_dim});
  return Status::OK();
}

core::StarQuerySpec AdRevenueByCountry() {
  // SELECT vi_country, pg_section, SUM(pv_ad_cents) FROM pageviews
  // JOIN pages ON pv_page = pg_id AND pg_paywalled = 0
  // JOIN visitors ON pv_visitor = vi_id AND vi_device != 'tablet'
  // GROUP BY vi_country, pg_section ORDER BY revenue DESC
  core::StarQuerySpec q;
  q.id = "ad_revenue_by_country";
  q.dims = {
      {"pages", "pv_page", "pg_id",
       Predicate::Eq("pg_paywalled", Value(int32_t{0})), {"pg_section"}},
      {"visitors", "pv_visitor", "vi_id",
       Predicate::Ne("vi_device", Value("tablet")), {"vi_country"}},
  };
  q.aggregates = {{"ad_cents", Expr::Col("pv_ad_cents")}};
  q.group_by = {"vi_country", "pg_section"};
  q.order_by = {{"ad_cents", false}};
  return q;
}

core::StarQuerySpec EngagedMobileReaders() {
  // Long reads (>2 min) on mobile devices, total dwell time by section.
  core::StarQuerySpec q;
  q.id = "engaged_mobile_readers";
  q.fact_predicate = Predicate::Gt("pv_ms_on_page", Value(int32_t{120000}));
  q.dims = {
      {"pages", "pv_page", "pg_id", Predicate::True(), {"pg_section"}},
      {"visitors", "pv_visitor", "vi_id",
       Predicate::Eq("vi_device", Value("mobile")), {}},
  };
  q.aggregates = {{"dwell_ms", Expr::Col("pv_ms_on_page")}};
  q.group_by = {"pg_section"};
  q.order_by = {{"dwell_ms", false}};
  return q;
}

}  // namespace

int main() {
  SetLogThreshold(LogLevel::kWarning);
  mr::ClusterOptions copts;
  copts.num_nodes = 3;
  copts.map_slots_per_node = 2;
  copts.dfs_block_size = 128 * 1024;
  mr::MrCluster cluster(copts);

  core::StarSchema star;
  CLY_CHECK_OK(LoadWarehouse(&cluster, &star));
  std::printf("web-analytics star loaded: %llu pageviews, 2 dimensions\n\n",
              static_cast<unsigned long long>(star.fact().num_rows));

  core::ClydesdaleEngine engine(&cluster, star, {});
  for (const core::StarQuerySpec& query :
       {AdRevenueByCountry(), EngagedMobileReaders()}) {
    auto result = engine.Execute(query);
    CLY_CHECK(result.ok());
    std::printf("%s (%zu rows):\n", query.id.c_str(), result->rows.size());
    for (size_t i = 0; i < result->rows.size() && i < 8; ++i) {
      std::printf("  %s\n", result->rows[i].ToString().c_str());
    }
    const auto& report = result->stage_reports[0];
    std::printf("  -> scanned %s from HDFS (projection pushed into CIF), "
                "%lld join survivors\n\n",
                HumanBytes(report.TotalMapInputBytes()).c_str(),
                static_cast<long long>(report.counters.Get(
                    core::kCounterJoinOutputRows)));
  }
  return 0;
}
