// Runs the full 13-query Star Schema Benchmark through all three engines —
// Clydesdale, Hive-style repartition join, and Hive-style mapjoin — on one
// in-process cluster, verifying that every engine returns identical results
// and comparing their I/O profiles (the paper's §6 experiment, functional
// layer).
//
// Environment: SSB_DEMO_SF overrides the scale factor (default 0.01).

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "core/clydesdale.h"
#include "hive/hive_engine.h"
#include "ssb/loader.h"
#include "ssb/queries.h"
#include "ssb/reference_executor.h"

using namespace clydesdale;  // NOLINT(build/namespaces)

int main() {
  SetLogThreshold(LogLevel::kWarning);
  const char* sf_env = std::getenv("SSB_DEMO_SF");
  const double sf = sf_env != nullptr ? std::atof(sf_env) : 0.01;

  mr::ClusterOptions copts;
  copts.num_nodes = 4;
  copts.map_slots_per_node = 2;
  copts.dfs_block_size = 256 * 1024;
  mr::MrCluster cluster(copts);

  ssb::SsbLoadOptions load;
  load.scale_factor = sf;
  auto dataset = ssb::LoadSsb(&cluster, load);
  CLY_CHECK(dataset.ok());

  core::ClydesdaleEngine clydesdale_engine(&cluster, dataset->star, {});
  core::StarSchema hive_star = dataset->star;
  *hive_star.mutable_fact() = dataset->fact_rcfile;
  hive::HiveOptions rp_options;
  rp_options.strategy = hive::JoinStrategy::kRepartition;
  hive::HiveEngine hive_rp(&cluster, hive_star, rp_options);
  hive::HiveOptions mj_options;
  mj_options.strategy = hive::JoinStrategy::kMapJoin;
  hive::HiveEngine hive_mj(&cluster, hive_star, mj_options);

  std::printf("SSB sf=%.3g, %llu fact rows, 3 engines + reference\n\n", sf,
              static_cast<unsigned long long>(dataset->lineorder_rows));
  std::printf("%-6s %6s %9s | %12s %12s %12s | %s\n", "query", "rows",
              "fact MB", "clydesdale", "hive-repart", "hive-mapjoin",
              "agreement");

  int agreements = 0, total = 0;
  for (const core::StarQuerySpec& query : ssb::AllQueries()) {
    auto reference = ssb::ExecuteReference(&cluster, dataset->star, query);
    CLY_CHECK(reference.ok());

    Stopwatch t1;
    auto cly = clydesdale_engine.Execute(query);
    const double cly_s = t1.ElapsedSeconds();
    Stopwatch t2;
    auto rp = hive_rp.Execute(query);
    const double rp_s = t2.ElapsedSeconds();
    Stopwatch t3;
    auto mj = hive_mj.Execute(query);
    const double mj_s = t3.ElapsedSeconds();
    CLY_CHECK(cly.ok());
    CLY_CHECK(rp.ok());
    CLY_CHECK(mj.ok());

    const bool agree =
        cly->rows == *reference && rp->rows == *reference && mj->rows == *reference;
    agreements += agree ? 1 : 0;
    ++total;

    const double fact_mb =
        static_cast<double>(cly->stage_reports[0].TotalMapInputBytes()) / 1e6;
    std::printf("%-6s %6zu %9.1f | %10.2fs %10.2fs %10.2fs | %s\n",
                query.id.c_str(), reference->size(), fact_mb, cly_s, rp_s,
                mj_s, agree ? "identical" : "MISMATCH");
  }
  std::printf("\n%d/%d queries: all engines agree with the single-threaded "
              "reference executor\n",
              agreements, total);
  std::printf("(functional wall times on one machine; the bench/ binaries "
              "model the paper's cluster-scale numbers)\n");
  return agreements == total ? 0 : 1;
}
