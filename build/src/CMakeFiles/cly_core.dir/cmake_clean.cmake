file(REMOVE_RECURSE
  "CMakeFiles/cly_core.dir/core/aggregation.cc.o"
  "CMakeFiles/cly_core.dir/core/aggregation.cc.o.d"
  "CMakeFiles/cly_core.dir/core/clydesdale.cc.o"
  "CMakeFiles/cly_core.dir/core/clydesdale.cc.o.d"
  "CMakeFiles/cly_core.dir/core/dim_hash_table.cc.o"
  "CMakeFiles/cly_core.dir/core/dim_hash_table.cc.o.d"
  "CMakeFiles/cly_core.dir/core/staged_join.cc.o"
  "CMakeFiles/cly_core.dir/core/staged_join.cc.o.d"
  "CMakeFiles/cly_core.dir/core/star_join_job.cc.o"
  "CMakeFiles/cly_core.dir/core/star_join_job.cc.o.d"
  "CMakeFiles/cly_core.dir/core/star_query.cc.o"
  "CMakeFiles/cly_core.dir/core/star_query.cc.o.d"
  "CMakeFiles/cly_core.dir/core/star_schema.cc.o"
  "CMakeFiles/cly_core.dir/core/star_schema.cc.o.d"
  "libcly_core.a"
  "libcly_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cly_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
