file(REMOVE_RECURSE
  "libcly_core.a"
)
