
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cc" "src/CMakeFiles/cly_core.dir/core/aggregation.cc.o" "gcc" "src/CMakeFiles/cly_core.dir/core/aggregation.cc.o.d"
  "/root/repo/src/core/clydesdale.cc" "src/CMakeFiles/cly_core.dir/core/clydesdale.cc.o" "gcc" "src/CMakeFiles/cly_core.dir/core/clydesdale.cc.o.d"
  "/root/repo/src/core/dim_hash_table.cc" "src/CMakeFiles/cly_core.dir/core/dim_hash_table.cc.o" "gcc" "src/CMakeFiles/cly_core.dir/core/dim_hash_table.cc.o.d"
  "/root/repo/src/core/staged_join.cc" "src/CMakeFiles/cly_core.dir/core/staged_join.cc.o" "gcc" "src/CMakeFiles/cly_core.dir/core/staged_join.cc.o.d"
  "/root/repo/src/core/star_join_job.cc" "src/CMakeFiles/cly_core.dir/core/star_join_job.cc.o" "gcc" "src/CMakeFiles/cly_core.dir/core/star_join_job.cc.o.d"
  "/root/repo/src/core/star_query.cc" "src/CMakeFiles/cly_core.dir/core/star_query.cc.o" "gcc" "src/CMakeFiles/cly_core.dir/core/star_query.cc.o.d"
  "/root/repo/src/core/star_schema.cc" "src/CMakeFiles/cly_core.dir/core/star_schema.cc.o" "gcc" "src/CMakeFiles/cly_core.dir/core/star_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cly_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
