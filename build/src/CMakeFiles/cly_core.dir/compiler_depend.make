# Empty compiler generated dependencies file for cly_core.
# This may be replaced when dependencies are built.
