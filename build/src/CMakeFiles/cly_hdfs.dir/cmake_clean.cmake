file(REMOVE_RECURSE
  "CMakeFiles/cly_hdfs.dir/hdfs/block.cc.o"
  "CMakeFiles/cly_hdfs.dir/hdfs/block.cc.o.d"
  "CMakeFiles/cly_hdfs.dir/hdfs/datanode.cc.o"
  "CMakeFiles/cly_hdfs.dir/hdfs/datanode.cc.o.d"
  "CMakeFiles/cly_hdfs.dir/hdfs/dfs.cc.o"
  "CMakeFiles/cly_hdfs.dir/hdfs/dfs.cc.o.d"
  "CMakeFiles/cly_hdfs.dir/hdfs/local_store.cc.o"
  "CMakeFiles/cly_hdfs.dir/hdfs/local_store.cc.o.d"
  "CMakeFiles/cly_hdfs.dir/hdfs/namenode.cc.o"
  "CMakeFiles/cly_hdfs.dir/hdfs/namenode.cc.o.d"
  "CMakeFiles/cly_hdfs.dir/hdfs/placement_policy.cc.o"
  "CMakeFiles/cly_hdfs.dir/hdfs/placement_policy.cc.o.d"
  "libcly_hdfs.a"
  "libcly_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cly_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
