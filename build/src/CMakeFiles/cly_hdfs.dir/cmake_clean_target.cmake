file(REMOVE_RECURSE
  "libcly_hdfs.a"
)
