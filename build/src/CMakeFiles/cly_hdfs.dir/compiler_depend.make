# Empty compiler generated dependencies file for cly_hdfs.
# This may be replaced when dependencies are built.
