
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdfs/block.cc" "src/CMakeFiles/cly_hdfs.dir/hdfs/block.cc.o" "gcc" "src/CMakeFiles/cly_hdfs.dir/hdfs/block.cc.o.d"
  "/root/repo/src/hdfs/datanode.cc" "src/CMakeFiles/cly_hdfs.dir/hdfs/datanode.cc.o" "gcc" "src/CMakeFiles/cly_hdfs.dir/hdfs/datanode.cc.o.d"
  "/root/repo/src/hdfs/dfs.cc" "src/CMakeFiles/cly_hdfs.dir/hdfs/dfs.cc.o" "gcc" "src/CMakeFiles/cly_hdfs.dir/hdfs/dfs.cc.o.d"
  "/root/repo/src/hdfs/local_store.cc" "src/CMakeFiles/cly_hdfs.dir/hdfs/local_store.cc.o" "gcc" "src/CMakeFiles/cly_hdfs.dir/hdfs/local_store.cc.o.d"
  "/root/repo/src/hdfs/namenode.cc" "src/CMakeFiles/cly_hdfs.dir/hdfs/namenode.cc.o" "gcc" "src/CMakeFiles/cly_hdfs.dir/hdfs/namenode.cc.o.d"
  "/root/repo/src/hdfs/placement_policy.cc" "src/CMakeFiles/cly_hdfs.dir/hdfs/placement_policy.cc.o" "gcc" "src/CMakeFiles/cly_hdfs.dir/hdfs/placement_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
