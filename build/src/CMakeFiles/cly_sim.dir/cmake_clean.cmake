file(REMOVE_RECURSE
  "CMakeFiles/cly_sim.dir/sim/cluster_spec.cc.o"
  "CMakeFiles/cly_sim.dir/sim/cluster_spec.cc.o.d"
  "CMakeFiles/cly_sim.dir/sim/event_sim.cc.o"
  "CMakeFiles/cly_sim.dir/sim/event_sim.cc.o.d"
  "CMakeFiles/cly_sim.dir/sim/hadoop_cost_model.cc.o"
  "CMakeFiles/cly_sim.dir/sim/hadoop_cost_model.cc.o.d"
  "CMakeFiles/cly_sim.dir/sim/task_profile.cc.o"
  "CMakeFiles/cly_sim.dir/sim/task_profile.cc.o.d"
  "CMakeFiles/cly_sim.dir/sim/workload.cc.o"
  "CMakeFiles/cly_sim.dir/sim/workload.cc.o.d"
  "libcly_sim.a"
  "libcly_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cly_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
