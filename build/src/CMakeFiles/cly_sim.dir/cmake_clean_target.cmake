file(REMOVE_RECURSE
  "libcly_sim.a"
)
