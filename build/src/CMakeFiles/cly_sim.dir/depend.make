# Empty dependencies file for cly_sim.
# This may be replaced when dependencies are built.
