
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster_spec.cc" "src/CMakeFiles/cly_sim.dir/sim/cluster_spec.cc.o" "gcc" "src/CMakeFiles/cly_sim.dir/sim/cluster_spec.cc.o.d"
  "/root/repo/src/sim/event_sim.cc" "src/CMakeFiles/cly_sim.dir/sim/event_sim.cc.o" "gcc" "src/CMakeFiles/cly_sim.dir/sim/event_sim.cc.o.d"
  "/root/repo/src/sim/hadoop_cost_model.cc" "src/CMakeFiles/cly_sim.dir/sim/hadoop_cost_model.cc.o" "gcc" "src/CMakeFiles/cly_sim.dir/sim/hadoop_cost_model.cc.o.d"
  "/root/repo/src/sim/task_profile.cc" "src/CMakeFiles/cly_sim.dir/sim/task_profile.cc.o" "gcc" "src/CMakeFiles/cly_sim.dir/sim/task_profile.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/CMakeFiles/cly_sim.dir/sim/workload.cc.o" "gcc" "src/CMakeFiles/cly_sim.dir/sim/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cly_hive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_ssb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
