# Empty dependencies file for cly_common.
# This may be replaced when dependencies are built.
