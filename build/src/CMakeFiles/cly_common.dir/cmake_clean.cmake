file(REMOVE_RECURSE
  "CMakeFiles/cly_common.dir/common/logging.cc.o"
  "CMakeFiles/cly_common.dir/common/logging.cc.o.d"
  "CMakeFiles/cly_common.dir/common/status.cc.o"
  "CMakeFiles/cly_common.dir/common/status.cc.o.d"
  "CMakeFiles/cly_common.dir/common/strings.cc.o"
  "CMakeFiles/cly_common.dir/common/strings.cc.o.d"
  "libcly_common.a"
  "libcly_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cly_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
