file(REMOVE_RECURSE
  "libcly_common.a"
)
