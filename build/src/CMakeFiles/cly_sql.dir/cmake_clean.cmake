file(REMOVE_RECURSE
  "CMakeFiles/cly_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/cly_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/cly_sql.dir/sql/parser.cc.o"
  "CMakeFiles/cly_sql.dir/sql/parser.cc.o.d"
  "libcly_sql.a"
  "libcly_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cly_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
