# Empty dependencies file for cly_sql.
# This may be replaced when dependencies are built.
