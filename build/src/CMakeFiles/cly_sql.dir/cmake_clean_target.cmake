file(REMOVE_RECURSE
  "libcly_sql.a"
)
