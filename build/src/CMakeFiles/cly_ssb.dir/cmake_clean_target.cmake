file(REMOVE_RECURSE
  "libcly_ssb.a"
)
