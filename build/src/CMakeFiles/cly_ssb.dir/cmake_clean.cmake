file(REMOVE_RECURSE
  "CMakeFiles/cly_ssb.dir/ssb/dbgen.cc.o"
  "CMakeFiles/cly_ssb.dir/ssb/dbgen.cc.o.d"
  "CMakeFiles/cly_ssb.dir/ssb/loader.cc.o"
  "CMakeFiles/cly_ssb.dir/ssb/loader.cc.o.d"
  "CMakeFiles/cly_ssb.dir/ssb/queries.cc.o"
  "CMakeFiles/cly_ssb.dir/ssb/queries.cc.o.d"
  "CMakeFiles/cly_ssb.dir/ssb/reference_executor.cc.o"
  "CMakeFiles/cly_ssb.dir/ssb/reference_executor.cc.o.d"
  "CMakeFiles/cly_ssb.dir/ssb/ssb_schema.cc.o"
  "CMakeFiles/cly_ssb.dir/ssb/ssb_schema.cc.o.d"
  "libcly_ssb.a"
  "libcly_ssb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cly_ssb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
