# Empty dependencies file for cly_ssb.
# This may be replaced when dependencies are built.
