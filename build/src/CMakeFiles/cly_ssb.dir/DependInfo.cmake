
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssb/dbgen.cc" "src/CMakeFiles/cly_ssb.dir/ssb/dbgen.cc.o" "gcc" "src/CMakeFiles/cly_ssb.dir/ssb/dbgen.cc.o.d"
  "/root/repo/src/ssb/loader.cc" "src/CMakeFiles/cly_ssb.dir/ssb/loader.cc.o" "gcc" "src/CMakeFiles/cly_ssb.dir/ssb/loader.cc.o.d"
  "/root/repo/src/ssb/queries.cc" "src/CMakeFiles/cly_ssb.dir/ssb/queries.cc.o" "gcc" "src/CMakeFiles/cly_ssb.dir/ssb/queries.cc.o.d"
  "/root/repo/src/ssb/reference_executor.cc" "src/CMakeFiles/cly_ssb.dir/ssb/reference_executor.cc.o" "gcc" "src/CMakeFiles/cly_ssb.dir/ssb/reference_executor.cc.o.d"
  "/root/repo/src/ssb/ssb_schema.cc" "src/CMakeFiles/cly_ssb.dir/ssb/ssb_schema.cc.o" "gcc" "src/CMakeFiles/cly_ssb.dir/ssb/ssb_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
