file(REMOVE_RECURSE
  "CMakeFiles/cly_schema.dir/schema/expr.cc.o"
  "CMakeFiles/cly_schema.dir/schema/expr.cc.o.d"
  "CMakeFiles/cly_schema.dir/schema/row.cc.o"
  "CMakeFiles/cly_schema.dir/schema/row.cc.o.d"
  "CMakeFiles/cly_schema.dir/schema/row_batch.cc.o"
  "CMakeFiles/cly_schema.dir/schema/row_batch.cc.o.d"
  "CMakeFiles/cly_schema.dir/schema/schema.cc.o"
  "CMakeFiles/cly_schema.dir/schema/schema.cc.o.d"
  "CMakeFiles/cly_schema.dir/schema/value.cc.o"
  "CMakeFiles/cly_schema.dir/schema/value.cc.o.d"
  "libcly_schema.a"
  "libcly_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cly_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
