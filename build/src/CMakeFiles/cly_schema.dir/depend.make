# Empty dependencies file for cly_schema.
# This may be replaced when dependencies are built.
