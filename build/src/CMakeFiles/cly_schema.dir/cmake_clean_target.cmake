file(REMOVE_RECURSE
  "libcly_schema.a"
)
