file(REMOVE_RECURSE
  "libcly_hive.a"
)
