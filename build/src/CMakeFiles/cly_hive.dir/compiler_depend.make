# Empty compiler generated dependencies file for cly_hive.
# This may be replaced when dependencies are built.
