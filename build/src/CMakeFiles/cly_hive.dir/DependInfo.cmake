
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hive/agg_stages.cc" "src/CMakeFiles/cly_hive.dir/hive/agg_stages.cc.o" "gcc" "src/CMakeFiles/cly_hive.dir/hive/agg_stages.cc.o.d"
  "/root/repo/src/hive/hive_engine.cc" "src/CMakeFiles/cly_hive.dir/hive/hive_engine.cc.o" "gcc" "src/CMakeFiles/cly_hive.dir/hive/hive_engine.cc.o.d"
  "/root/repo/src/hive/hive_plan.cc" "src/CMakeFiles/cly_hive.dir/hive/hive_plan.cc.o" "gcc" "src/CMakeFiles/cly_hive.dir/hive/hive_plan.cc.o.d"
  "/root/repo/src/hive/map_join.cc" "src/CMakeFiles/cly_hive.dir/hive/map_join.cc.o" "gcc" "src/CMakeFiles/cly_hive.dir/hive/map_join.cc.o.d"
  "/root/repo/src/hive/repartition_join.cc" "src/CMakeFiles/cly_hive.dir/hive/repartition_join.cc.o" "gcc" "src/CMakeFiles/cly_hive.dir/hive/repartition_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
