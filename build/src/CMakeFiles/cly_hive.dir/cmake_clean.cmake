file(REMOVE_RECURSE
  "CMakeFiles/cly_hive.dir/hive/agg_stages.cc.o"
  "CMakeFiles/cly_hive.dir/hive/agg_stages.cc.o.d"
  "CMakeFiles/cly_hive.dir/hive/hive_engine.cc.o"
  "CMakeFiles/cly_hive.dir/hive/hive_engine.cc.o.d"
  "CMakeFiles/cly_hive.dir/hive/hive_plan.cc.o"
  "CMakeFiles/cly_hive.dir/hive/hive_plan.cc.o.d"
  "CMakeFiles/cly_hive.dir/hive/map_join.cc.o"
  "CMakeFiles/cly_hive.dir/hive/map_join.cc.o.d"
  "CMakeFiles/cly_hive.dir/hive/repartition_join.cc.o"
  "CMakeFiles/cly_hive.dir/hive/repartition_join.cc.o.d"
  "libcly_hive.a"
  "libcly_hive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cly_hive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
