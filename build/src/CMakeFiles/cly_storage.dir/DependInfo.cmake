
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/binary_row_format.cc" "src/CMakeFiles/cly_storage.dir/storage/binary_row_format.cc.o" "gcc" "src/CMakeFiles/cly_storage.dir/storage/binary_row_format.cc.o.d"
  "/root/repo/src/storage/byte_io.cc" "src/CMakeFiles/cly_storage.dir/storage/byte_io.cc.o" "gcc" "src/CMakeFiles/cly_storage.dir/storage/byte_io.cc.o.d"
  "/root/repo/src/storage/cif.cc" "src/CMakeFiles/cly_storage.dir/storage/cif.cc.o" "gcc" "src/CMakeFiles/cly_storage.dir/storage/cif.cc.o.d"
  "/root/repo/src/storage/rcfile.cc" "src/CMakeFiles/cly_storage.dir/storage/rcfile.cc.o" "gcc" "src/CMakeFiles/cly_storage.dir/storage/rcfile.cc.o.d"
  "/root/repo/src/storage/row_codec.cc" "src/CMakeFiles/cly_storage.dir/storage/row_codec.cc.o" "gcc" "src/CMakeFiles/cly_storage.dir/storage/row_codec.cc.o.d"
  "/root/repo/src/storage/table_format.cc" "src/CMakeFiles/cly_storage.dir/storage/table_format.cc.o" "gcc" "src/CMakeFiles/cly_storage.dir/storage/table_format.cc.o.d"
  "/root/repo/src/storage/text_format.cc" "src/CMakeFiles/cly_storage.dir/storage/text_format.cc.o" "gcc" "src/CMakeFiles/cly_storage.dir/storage/text_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cly_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
