# Empty compiler generated dependencies file for cly_storage.
# This may be replaced when dependencies are built.
