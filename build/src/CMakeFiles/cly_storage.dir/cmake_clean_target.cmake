file(REMOVE_RECURSE
  "libcly_storage.a"
)
