file(REMOVE_RECURSE
  "CMakeFiles/cly_storage.dir/storage/binary_row_format.cc.o"
  "CMakeFiles/cly_storage.dir/storage/binary_row_format.cc.o.d"
  "CMakeFiles/cly_storage.dir/storage/byte_io.cc.o"
  "CMakeFiles/cly_storage.dir/storage/byte_io.cc.o.d"
  "CMakeFiles/cly_storage.dir/storage/cif.cc.o"
  "CMakeFiles/cly_storage.dir/storage/cif.cc.o.d"
  "CMakeFiles/cly_storage.dir/storage/rcfile.cc.o"
  "CMakeFiles/cly_storage.dir/storage/rcfile.cc.o.d"
  "CMakeFiles/cly_storage.dir/storage/row_codec.cc.o"
  "CMakeFiles/cly_storage.dir/storage/row_codec.cc.o.d"
  "CMakeFiles/cly_storage.dir/storage/table_format.cc.o"
  "CMakeFiles/cly_storage.dir/storage/table_format.cc.o.d"
  "CMakeFiles/cly_storage.dir/storage/text_format.cc.o"
  "CMakeFiles/cly_storage.dir/storage/text_format.cc.o.d"
  "libcly_storage.a"
  "libcly_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cly_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
