# Empty compiler generated dependencies file for cly_mapreduce.
# This may be replaced when dependencies are built.
