file(REMOVE_RECURSE
  "CMakeFiles/cly_mapreduce.dir/mapreduce/counters.cc.o"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/counters.cc.o.d"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/engine.cc.o"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/engine.cc.o.d"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/input_format.cc.o"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/input_format.cc.o.d"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/job_conf.cc.o"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/job_conf.cc.o.d"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/job_report.cc.o"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/job_report.cc.o.d"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/map_runner.cc.o"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/map_runner.cc.o.d"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/output_format.cc.o"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/output_format.cc.o.d"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/scheduler.cc.o"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/scheduler.cc.o.d"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/shuffle.cc.o"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/shuffle.cc.o.d"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/task_context.cc.o"
  "CMakeFiles/cly_mapreduce.dir/mapreduce/task_context.cc.o.d"
  "libcly_mapreduce.a"
  "libcly_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cly_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
