file(REMOVE_RECURSE
  "libcly_mapreduce.a"
)
