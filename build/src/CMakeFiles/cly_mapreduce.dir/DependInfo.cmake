
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/counters.cc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/counters.cc.o" "gcc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/counters.cc.o.d"
  "/root/repo/src/mapreduce/engine.cc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/engine.cc.o" "gcc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/engine.cc.o.d"
  "/root/repo/src/mapreduce/input_format.cc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/input_format.cc.o" "gcc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/input_format.cc.o.d"
  "/root/repo/src/mapreduce/job_conf.cc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/job_conf.cc.o" "gcc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/job_conf.cc.o.d"
  "/root/repo/src/mapreduce/job_report.cc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/job_report.cc.o" "gcc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/job_report.cc.o.d"
  "/root/repo/src/mapreduce/map_runner.cc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/map_runner.cc.o" "gcc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/map_runner.cc.o.d"
  "/root/repo/src/mapreduce/output_format.cc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/output_format.cc.o" "gcc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/output_format.cc.o.d"
  "/root/repo/src/mapreduce/scheduler.cc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/scheduler.cc.o" "gcc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/scheduler.cc.o.d"
  "/root/repo/src/mapreduce/shuffle.cc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/shuffle.cc.o" "gcc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/shuffle.cc.o.d"
  "/root/repo/src/mapreduce/task_context.cc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/task_context.cc.o" "gcc" "src/CMakeFiles/cly_mapreduce.dir/mapreduce/task_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cly_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
