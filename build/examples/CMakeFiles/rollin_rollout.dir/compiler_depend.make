# Empty compiler generated dependencies file for rollin_rollout.
# This may be replaced when dependencies are built.
