file(REMOVE_RECURSE
  "CMakeFiles/rollin_rollout.dir/rollin_rollout.cpp.o"
  "CMakeFiles/rollin_rollout.dir/rollin_rollout.cpp.o.d"
  "rollin_rollout"
  "rollin_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollin_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
