file(REMOVE_RECURSE
  "CMakeFiles/custom_star_schema.dir/custom_star_schema.cpp.o"
  "CMakeFiles/custom_star_schema.dir/custom_star_schema.cpp.o.d"
  "custom_star_schema"
  "custom_star_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_star_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
