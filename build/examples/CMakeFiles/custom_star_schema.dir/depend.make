# Empty dependencies file for custom_star_schema.
# This may be replaced when dependencies are built.
