# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/hdfs_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/ssb_test[1]_include.cmake")
include("/root/repo/build/tests/dim_hash_table_test[1]_include.cmake")
include("/root/repo/build/tests/engine_integration_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/star_query_test[1]_include.cmake")
include("/root/repo/build/tests/hive_plan_test[1]_include.cmake")
include("/root/repo/build/tests/staged_join_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/rollin_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/aggregation_test[1]_include.cmake")
