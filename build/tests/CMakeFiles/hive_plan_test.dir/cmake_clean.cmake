file(REMOVE_RECURSE
  "CMakeFiles/hive_plan_test.dir/hive_plan_test.cc.o"
  "CMakeFiles/hive_plan_test.dir/hive_plan_test.cc.o.d"
  "hive_plan_test"
  "hive_plan_test.pdb"
  "hive_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
