# Empty dependencies file for hive_plan_test.
# This may be replaced when dependencies are built.
