file(REMOVE_RECURSE
  "CMakeFiles/staged_join_test.dir/staged_join_test.cc.o"
  "CMakeFiles/staged_join_test.dir/staged_join_test.cc.o.d"
  "staged_join_test"
  "staged_join_test.pdb"
  "staged_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staged_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
