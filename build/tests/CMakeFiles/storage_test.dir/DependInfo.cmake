
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/storage_test.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cly_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_ssb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_hive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
