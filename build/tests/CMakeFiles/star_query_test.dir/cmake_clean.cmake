file(REMOVE_RECURSE
  "CMakeFiles/star_query_test.dir/star_query_test.cc.o"
  "CMakeFiles/star_query_test.dir/star_query_test.cc.o.d"
  "star_query_test"
  "star_query_test.pdb"
  "star_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
