# Empty dependencies file for star_query_test.
# This may be replaced when dependencies are built.
