# Empty compiler generated dependencies file for dim_hash_table_test.
# This may be replaced when dependencies are built.
