file(REMOVE_RECURSE
  "CMakeFiles/dim_hash_table_test.dir/dim_hash_table_test.cc.o"
  "CMakeFiles/dim_hash_table_test.dir/dim_hash_table_test.cc.o.d"
  "dim_hash_table_test"
  "dim_hash_table_test.pdb"
  "dim_hash_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dim_hash_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
