# Empty compiler generated dependencies file for rollin_test.
# This may be replaced when dependencies are built.
