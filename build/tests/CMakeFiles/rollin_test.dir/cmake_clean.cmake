file(REMOVE_RECURSE
  "CMakeFiles/rollin_test.dir/rollin_test.cc.o"
  "CMakeFiles/rollin_test.dir/rollin_test.cc.o.d"
  "rollin_test"
  "rollin_test.pdb"
  "rollin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
