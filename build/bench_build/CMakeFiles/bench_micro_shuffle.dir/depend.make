# Empty dependencies file for bench_micro_shuffle.
# This may be replaced when dependencies are built.
