file(REMOVE_RECURSE
  "../bench/bench_micro_shuffle"
  "../bench/bench_micro_shuffle.pdb"
  "CMakeFiles/bench_micro_shuffle.dir/bench_micro_shuffle.cpp.o"
  "CMakeFiles/bench_micro_shuffle.dir/bench_micro_shuffle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
