file(REMOVE_RECURSE
  "../bench/bench_fig7_cluster_a"
  "../bench/bench_fig7_cluster_a.pdb"
  "CMakeFiles/bench_fig7_cluster_a.dir/bench_fig7_cluster_a.cpp.o"
  "CMakeFiles/bench_fig7_cluster_a.dir/bench_fig7_cluster_a.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cluster_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
