# Empty dependencies file for bench_fig7_cluster_a.
# This may be replaced when dependencies are built.
