file(REMOVE_RECURSE
  "../bench/bench_q21_breakdown"
  "../bench/bench_q21_breakdown.pdb"
  "CMakeFiles/bench_q21_breakdown.dir/bench_q21_breakdown.cpp.o"
  "CMakeFiles/bench_q21_breakdown.dir/bench_q21_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q21_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
