# Empty dependencies file for bench_q21_breakdown.
# This may be replaced when dependencies are built.
