# Empty dependencies file for bench_fig8_cluster_b.
# This may be replaced when dependencies are built.
