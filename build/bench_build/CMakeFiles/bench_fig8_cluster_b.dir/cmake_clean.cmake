file(REMOVE_RECURSE
  "../bench/bench_fig8_cluster_b"
  "../bench/bench_fig8_cluster_b.pdb"
  "CMakeFiles/bench_fig8_cluster_b.dir/bench_fig8_cluster_b.cpp.o"
  "CMakeFiles/bench_fig8_cluster_b.dir/bench_fig8_cluster_b.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cluster_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
