# Empty dependencies file for bench_table1_testdfsio.
# This may be replaced when dependencies are built.
