file(REMOVE_RECURSE
  "../bench/bench_table1_testdfsio"
  "../bench/bench_table1_testdfsio.pdb"
  "CMakeFiles/bench_table1_testdfsio.dir/bench_table1_testdfsio.cpp.o"
  "CMakeFiles/bench_table1_testdfsio.dir/bench_table1_testdfsio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_testdfsio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
