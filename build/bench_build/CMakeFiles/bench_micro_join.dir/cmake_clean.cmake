file(REMOVE_RECURSE
  "../bench/bench_micro_join"
  "../bench/bench_micro_join.pdb"
  "CMakeFiles/bench_micro_join.dir/bench_micro_join.cpp.o"
  "CMakeFiles/bench_micro_join.dir/bench_micro_join.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
